//! The lint rules. Each rule consumes the (cfg(test)-stripped) token stream
//! of one file and appends [`Finding`]s; `event-coverage` additionally
//! correlates across files.

use crate::lexer::{TokKind, Token};
use crate::{Finding, RULE_BORROW, RULE_DETERMINISM, RULE_EVENT_COVERAGE, RULE_PERSIST};

// ---------------------------------------------------------------------------
// borrow-across-await
// ---------------------------------------------------------------------------

/// A live `RefCell` guard the scope tracker is watching.
#[derive(Debug)]
struct Guard {
    /// Binding name (`let g = x.borrow_mut();`) or a description for
    /// scrutinee temporaries (`match x.borrow() { … }`).
    name: String,
    /// Index into the scope stack of the block the guard lives in.
    scope: usize,
    /// Line the guard was taken on.
    line: u32,
}

/// One entry of the block-scope stack.
#[derive(Debug)]
struct Scope {
    /// Guards bound directly in this block die at its closing brace.
    /// (Kept implicitly via `Guard::scope`.)
    ///
    /// `barrier` cuts guard visibility: the body of a nested `fn` or an
    /// `async` block executes on its own stack frame / future, so guards
    /// from enclosing scopes are not held across its awaits *at this site*
    /// (if the enclosing guard is still live when the future is awaited,
    /// the await of that future is flagged instead).
    barrier: bool,
}

/// Header state for `match` / `if let` / `while let` / `for` scrutinees:
/// temporaries created in the scrutinee live for the whole block, so a
/// `borrow()` there is a guard over the entire body.
#[derive(Debug)]
struct Header {
    /// Paren depth when the header keyword was seen; its body `{` opens at
    /// this depth.
    paren_depth: i32,
    /// True once a `borrow()` / `borrow_mut()` call was seen in the header.
    borrowed: bool,
    /// Line of the borrow call.
    borrow_line: u32,
    /// Which construct, for the message.
    keyword: &'static str,
}

/// Tracks a `let` statement from the `let` keyword to its terminating `;`.
#[derive(Debug)]
struct LetStmt {
    /// Brace depth the statement began at (its `;` terminates there).
    brace_depth: i32,
    /// Paren depth the statement began at.
    paren_depth: i32,
    /// The bound name, when the pattern is a simple `[mut] ident`.
    name: Option<String>,
    /// Line of the `let`.
    line: u32,
    /// True once the pattern's `=` was crossed.
    seen_eq: bool,
}

/// Detects `RefCell` borrow guards held across `.await` points.
///
/// Three detectors, all scope-tracked with a brace stack:
/// - **let-bound guards**: `let g = …borrow_mut();` stays live until its
///   block closes or an explicit `drop(g)` — any `.await` in between is a
///   latent `BorrowMutError` under a rare interleaving.
/// - **same-statement temporaries**: `f(x.borrow().y).await` holds the
///   temporary `Ref` until the end of the whole statement, across the await.
/// - **scrutinee temporaries**: `match x.borrow() { … }` (and `if let` /
///   `while let` / `for` headers) keep the guard alive for every arm, so an
///   await inside the body is flagged.
pub fn borrow_across_await(tokens: &[Token], findings: &mut Vec<Finding>) {
    let mut scopes: Vec<Scope> = vec![Scope { barrier: true }];
    let mut guards: Vec<Guard> = Vec::new();
    let mut headers: Vec<Header> = Vec::new();
    let mut let_stmt: Option<LetStmt> = None;
    let mut paren_depth: i32 = 0;
    // Pending "fn body opens a barrier scope": set at `fn`, consumed by the
    // next `{` at the recorded paren depth.
    let mut fn_pending: Option<i32> = None;
    // Pending "async block opens a barrier scope".
    let mut async_pending = false;
    // Detector 2 state: a borrow call seen since the last statement
    // boundary (`;`, `{`, `}`).
    let mut stmt_borrow: Option<u32> = None;

    let is_borrow_call = |i: usize| -> bool {
        tokens[i].is_punct('.')
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.is_ident("borrow") || t.is_ident("borrow_mut"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
    };

    let mut brace_depth: i32 = 0;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];

        // ---- statement boundaries for the same-statement detector ----
        // (`{` and `}` also reset it, in the brace handling below.)
        if t.is_punct(';') {
            stmt_borrow = None;
        }

        if t.is_ident("fn") {
            fn_pending = Some(paren_depth);
        } else if t.is_ident("async") {
            // `async fn` is handled via `fn`; `async {` / `async move {`
            // opens a barrier block.
            let next = tokens.get(i + 1);
            let next2 = tokens.get(i + 2);
            if next.is_some_and(|t| t.is_punct('{'))
                || (next.is_some_and(|t| t.is_ident("move"))
                    && next2.is_some_and(|t| t.is_punct('{')))
            {
                async_pending = true;
            }
        } else if t.is_ident("match") || t.is_ident("for") {
            headers.push(Header {
                paren_depth,
                borrowed: false,
                borrow_line: 0,
                keyword: if t.is_ident("match") { "match" } else { "for" },
            });
        } else if (t.is_ident("if") || t.is_ident("while"))
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("let"))
        {
            headers.push(Header {
                paren_depth,
                borrowed: false,
                borrow_line: 0,
                keyword: if t.is_ident("if") {
                    "if let"
                } else {
                    "while let"
                },
            });
            // Do not treat the scrutinee `let` as a binding statement.
            i += 2;
            // Fall through to the next token after skipping `let`.
            continue;
        } else if t.is_ident("let") && let_stmt.is_none() {
            let mut name = None;
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(tok) = tokens.get(j) {
                if tok.kind == TokKind::Ident && !tok.is_ident("_") {
                    name = Some(tok.text.clone());
                }
            }
            let_stmt = Some(LetStmt {
                brace_depth,
                paren_depth,
                name,
                line: t.line,
                seen_eq: false,
            });
        } else if t.is_ident("drop")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
            && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            let victim = &tokens[i + 2].text;
            guards.retain(|g| &g.name != victim);
        }

        // ---- borrow calls feed the same-statement detector and headers ----
        if is_borrow_call(i) {
            stmt_borrow = Some(tokens[i + 1].line);
            if let Some(h) = headers.last_mut() {
                if !h.borrowed {
                    h.borrowed = true;
                    h.borrow_line = tokens[i + 1].line;
                }
            }
        }

        // ---- awaits: check every detector ----
        if t.is_punct('.') && tokens.get(i + 1).is_some_and(|t| t.is_ident("await")) {
            let line = tokens[i + 1].line;
            if let Some(bline) = stmt_borrow {
                findings.push(Finding::new(
                    RULE_BORROW,
                    line,
                    format!(
                        "RefCell guard temporary from the borrow on line {bline} is still \
                         live at this `.await` (temporaries drop at the end of the full \
                         statement); bind the borrowed value first and drop the guard \
                         before awaiting"
                    ),
                ));
                // One report per statement is enough.
                stmt_borrow = None;
            }
            // Innermost barrier bounds which guards are visible here.
            let barrier_scope = scopes.iter().rposition(|s| s.barrier).unwrap_or(0);
            for g in guards.iter().filter(|g| g.scope >= barrier_scope) {
                findings.push(Finding::new(
                    RULE_BORROW,
                    line,
                    format!(
                        "RefCell guard `{}` (taken on line {}) is held across this \
                         `.await`; end its scope or `drop()` it before awaiting",
                        g.name, g.line
                    ),
                ));
            }
        }

        // ---- braces drive scopes, headers and guard lifetimes ----
        if t.is_punct('(') {
            paren_depth += 1;
        } else if t.is_punct(')') {
            paren_depth -= 1;
        } else if t.is_punct('{') {
            stmt_borrow = None;
            brace_depth += 1;
            let barrier = async_pending || fn_pending == Some(paren_depth);
            if fn_pending == Some(paren_depth) {
                fn_pending = None;
            }
            async_pending = false;
            scopes.push(Scope { barrier });
            // A header whose body opens at its own paren depth becomes a
            // scrutinee guard over this scope.
            if let Some(h) = headers.last() {
                if h.paren_depth == paren_depth {
                    let h = headers.pop().expect("checked non-empty");
                    if h.borrowed {
                        guards.push(Guard {
                            name: format!("<{} scrutinee>", h.keyword),
                            scope: scopes.len() - 1,
                            line: h.borrow_line,
                        });
                    }
                }
            }
        } else if t.is_punct('}') {
            stmt_borrow = None;
            brace_depth -= 1;
            if scopes.len() > 1 {
                scopes.pop();
                let cut = scopes.len();
                guards.retain(|g| g.scope < cut);
            }
        }

        // ---- let-statement bookkeeping ----
        if let Some(ls) = &mut let_stmt {
            if t.is_punct('=')
                && !ls.seen_eq
                && !tokens.get(i + 1).is_some_and(|t| t.is_punct('='))
                && !tokens.get(i.wrapping_sub(1)).is_some_and(|t| {
                    t.is_punct('=') || t.is_punct('!') || t.is_punct('<') || t.is_punct('>')
                })
            {
                ls.seen_eq = true;
            }
            if t.is_punct(';') && brace_depth == ls.brace_depth && paren_depth == ls.paren_depth {
                // Statement over: does the initializer end with a borrow
                // call? Tail shape: `. borrow|borrow_mut ( ) ;`
                let ends_with_borrow = i >= 4
                    && tokens[i - 1].is_punct(')')
                    && tokens[i - 2].is_punct('(')
                    && (tokens[i - 3].is_ident("borrow") || tokens[i - 3].is_ident("borrow_mut"))
                    && tokens[i - 4].is_punct('.');
                if ends_with_borrow && ls.seen_eq {
                    if let Some(name) = ls.name.clone() {
                        guards.push(Guard {
                            name,
                            scope: scopes.len() - 1,
                            line: ls.line,
                        });
                    }
                }
                let_stmt = None;
            }
        }

        i += 1;
    }
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

/// Flags nondeterminism-prone constructs in sim-facing code: `HashMap` /
/// `HashSet` with the default (randomly seeded) hasher, wall-clock time
/// sources, and OS-entropy RNGs. The simulation must replay bit-identically
/// from a seed; all of these smuggle per-process state into it.
pub fn determinism(tokens: &[Token], findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "HashMap" | "HashSet" => {
                    let min_args = if t.text == "HashMap" { 3 } else { 2 };
                    if !has_explicit_hasher(tokens, i + 1, min_args) {
                        findings.push(Finding::new(
                            RULE_DETERMINISM,
                            t.line,
                            format!(
                                "std::collections::{} with the default RandomState hasher \
                                 is seeded per process — iteration order breaks replay \
                                 bit-identity; use FxHashMap/FxHashSet (switchfs_simnet) \
                                 or a BTree collection",
                                t.text
                            ),
                        ));
                    }
                }
                "Instant" => {
                    findings.push(Finding::new(
                        RULE_DETERMINISM,
                        t.line,
                        "std::time::Instant reads the wall clock; sim-facing code must \
                         use virtual time (SimTime / SimHandle::now)"
                            .into(),
                    ));
                }
                "SystemTime" => {
                    findings.push(Finding::new(
                        RULE_DETERMINISM,
                        t.line,
                        "SystemTime reads the wall clock; sim-facing code must use \
                         virtual time (SimTime / SimHandle::now)"
                            .into(),
                    ));
                }
                "thread_rng" | "from_entropy" => {
                    findings.push(Finding::new(
                        RULE_DETERMINISM,
                        t.line,
                        format!(
                            "`{}` draws OS entropy; sim-facing code must derive all \
                             randomness from the run's seed",
                            t.text
                        ),
                    ));
                }
                "random"
                    if i >= 2
                        && tokens[i - 1].is_punct(':')
                        && tokens[i - 2].is_punct(':')
                        && tokens
                            .get(i.wrapping_sub(3))
                            .is_some_and(|t| t.is_ident("rand")) =>
                {
                    findings.push(Finding::new(
                        RULE_DETERMINISM,
                        t.line,
                        "`rand::random` draws OS entropy; sim-facing code must derive \
                         all randomness from the run's seed"
                            .into(),
                    ));
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// True when the identifier at `start-1` is followed by `<…>` carrying at
/// least `min_args` top-level generic arguments (i.e. an explicit hasher).
fn has_explicit_hasher(tokens: &[Token], start: usize, min_args: usize) -> bool {
    let Some(t) = tokens.get(start) else {
        return false;
    };
    // `HashMap::<…>` turbofish: skip the `::`.
    let mut j = start;
    if t.is_punct(':') && tokens.get(start + 1).is_some_and(|t| t.is_punct(':')) {
        if tokens.get(start + 2).is_some_and(|t| t.is_punct('<')) {
            j = start + 2;
        } else {
            return false;
        }
    } else if !t.is_punct('<') {
        return false;
    }
    // Count top-level commas between the matching angle brackets.
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut args = 1usize;
    let mut saw_any = false;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('<')
            && !tokens
                .get(j.wrapping_sub(1))
                .is_some_and(|p| p.is_punct('-'))
        {
            angle += 1;
        } else if t.is_punct('>')
            && !tokens
                .get(j.wrapping_sub(1))
                .is_some_and(|p| p.is_punct('-'))
        {
            angle -= 1;
            if angle == 0 {
                return saw_any && args >= min_args;
            }
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct(',') && angle == 1 && paren == 0 {
            args += 1;
        } else if angle >= 1 {
            saw_any = true;
        }
        j += 1;
    }
    false
}

// ---------------------------------------------------------------------------
// persist-ordering
// ---------------------------------------------------------------------------

/// Methods whose call releases information onto the network. A flush must
/// precede any of these once an ordering-critical record was appended.
const SEND_FAMILY: &[&str] = &[
    "send",
    "send_plain",
    "send_dirty",
    "send_with_ack",
    "send_to",
    "multicast_plain",
    "respond",
    "reply",
];

/// Enforces WAL persist ordering at protocol barriers: any function that
/// appends an ordering-critical record (a 2PC [`TxnMarker`], a shard
/// [`MigrationMarker`], or a durable completion) must `flush()` it before
/// any network send in the same body — otherwise a crash in the window
/// leaves remote state ahead of local durable state (the torn-tail
/// asymmetry PR 6 audited by hand).
pub fn persist_ordering(tokens: &[Token], findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            if let Some((body_start, body_end)) = fn_body(tokens, i) {
                check_fn_persist(&tokens[body_start..body_end], findings);
                // Continue *inside* the body too (nested fns are rare but
                // cheap to cover) — advance past the `fn` keyword only.
            }
        }
        i += 1;
    }
}

/// Finds the body of the fn whose `fn` keyword sits at `i`; returns token
/// index range (exclusive of the braces).
fn fn_body(tokens: &[Token], i: usize) -> Option<(usize, usize)> {
    let mut j = i + 1;
    let mut paren = 0i32;
    // Scan the signature for the opening brace at paren depth 0.
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct(';') && paren == 0 {
            return None; // trait method declaration without a body
        } else if t.is_punct('}') && paren == 0 {
            return None; // `fn` pointer type inside a struct/enum, not an item
        } else if t.is_punct('{') && paren == 0 {
            break;
        }
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    let start = j + 1;
    let mut depth = 1i32;
    j += 1;
    while j < tokens.len() {
        if tokens[j].is_punct('{') {
            depth += 1;
        } else if tokens[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((start, j));
            }
        }
        j += 1;
    }
    None
}

fn check_fn_persist(body: &[Token], findings: &mut Vec<Finding>) {
    // Ordering-critical marker types present in this body?
    let critical = body.iter().enumerate().any(|(k, t)| {
        t.is_ident("TxnMarker")
            || t.is_ident("MigrationMarker")
            || (t.is_ident("WalOp")
                && body.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && body.get(k + 2).is_some_and(|t| t.is_punct(':'))
                && body.get(k + 3).is_some_and(|t| {
                    t.is_ident("txn") || t.is_ident("completion") || t.is_ident("migration")
                }))
    });
    if !critical {
        return;
    }
    // Append-family calls on a WAL receiver: `…wal.append…(`.
    let appends: Vec<usize> = (0..body.len())
        .filter(|&k| {
            body[k].is_ident("wal")
                && body.get(k + 1).is_some_and(|t| t.is_punct('.'))
                && body
                    .get(k + 2)
                    .is_some_and(|t| t.kind == TokKind::Ident && t.text.starts_with("append"))
                && body.get(k + 3).is_some_and(|t| t.is_punct('('))
        })
        .collect();
    for &a in &appends {
        let flush_at = (a..body.len()).find(|&k| {
            body[k].is_punct('.')
                && body.get(k + 1).is_some_and(|t| t.is_ident("flush"))
                && body.get(k + 2).is_some_and(|t| t.is_punct('('))
        });
        let send_at = (a..body.len()).find(|&k| {
            body[k].is_punct('.')
                && body.get(k + 1).is_some_and(|t| {
                    t.kind == TokKind::Ident && SEND_FAMILY.contains(&t.text.as_str())
                })
                && body.get(k + 2).is_some_and(|t| t.is_punct('('))
        });
        match (flush_at, send_at) {
            (None, _) => findings.push(Finding::new(
                RULE_PERSIST,
                body[a].line,
                "ordering-critical WAL append (TxnMarker / MigrationMarker / durable \
                 completion) is never flushed in this function; a crash in the window \
                 can lose the record after its effects escaped"
                    .into(),
            )),
            (Some(f), Some(s)) if s < f => findings.push(Finding::new(
                RULE_PERSIST,
                body[s + 1].line,
                format!(
                    "network send before the flush of the ordering-critical WAL append \
                     on line {}; flush at the protocol barrier first",
                    body[a].line
                ),
            )),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// event-coverage
// ---------------------------------------------------------------------------

/// One `EventKind` enum variant, by name and defining line.
#[derive(Debug, Clone)]
pub struct EventVariant {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant in the obs source.
    pub line: u32,
}

/// Extracts the variants of `pub enum EventKind { … }` from the obs crate's
/// token stream.
pub fn event_kind_variants(tokens: &[Token]) -> Vec<EventVariant> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("enum") && tokens.get(i + 1).is_some_and(|t| t.is_ident("EventKind"))
        {
            // Find the `{` (skipping generics, none expected).
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            let mut expect_variant = true;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        return out;
                    }
                    if depth == 1 {
                        // closed a struct/tuple variant's field list
                        expect_variant = false;
                    }
                } else if depth == 1 {
                    if t.is_punct(',') {
                        expect_variant = true;
                    } else if t.is_punct('#') {
                        // attribute on the next variant: skip `#[…]`
                        let mut d = 0i32;
                        while j < tokens.len() {
                            if tokens[j].is_punct('[') {
                                d += 1;
                            } else if tokens[j].is_punct(']') {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    } else if expect_variant && t.kind == TokKind::Ident {
                        out.push(EventVariant {
                            name: t.text.clone(),
                            line: t.line,
                        });
                        expect_variant = false;
                    }
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// Collects the set of `EventKind::Variant` constructions in a token stream
/// (an emission site, when the stream comes from outside `crates/obs`).
pub fn event_kind_uses(tokens: &[Token], into: &mut std::collections::BTreeSet<String>) {
    for k in 0..tokens.len() {
        if tokens[k].is_ident("EventKind")
            && tokens.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(k + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(v) = tokens.get(k + 3) {
                if v.kind == TokKind::Ident {
                    into.insert(v.text.clone());
                }
            }
        }
    }
}

/// Reports every [`EventKind`] variant that is never constructed outside the
/// obs crate: an event vocabulary entry nobody emits is a blind spot —
/// exactly where a divergence hides (the recovery replay path taught us
/// that).
pub fn event_coverage(
    variants: &[EventVariant],
    used: &std::collections::BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for v in variants {
        if !used.contains(&v.name) {
            findings.push(Finding::new(
                RULE_EVENT_COVERAGE,
                v.line,
                format!(
                    "EventKind::{} is never emitted outside crates/obs; either \
                     instrument the protocol site it names or remove the variant",
                    v.name
                ),
            ));
        }
    }
}
