// Must TRIP borrow-across-await: all three detector shapes.

async fn let_bound_guard(cell: &RefCell<u32>) {
    let guard = cell.borrow_mut();
    do_io().await; // guard still live here
    *guard += 1;
}

async fn same_statement_temporary(cell: &RefCell<State>) {
    // The temporary `Ref` lives to the end of the full statement, across
    // the await.
    submit(cell.borrow().payload.clone()).await;
}

async fn match_scrutinee(cell: &RefCell<Option<u32>>) {
    match cell.borrow().as_ref() {
        Some(_) => do_io().await,
        None => {}
    }
}
