// Must PASS determinism: explicit hashers, BTree collections, virtual time,
// seeded randomness.

use std::collections::BTreeMap;

struct Index {
    by_id: FxHashMap<u64, String>,
    explicit: HashMap<u64, String, FxBuildHasher>,
    explicit_set: HashSet<u64, FxBuildHasher>,
    ordered: BTreeMap<u64, String>,
}

fn timing(handle: &SimHandle) -> SimTime {
    handle.now()
}

fn roll(rng: &mut StdRng) -> u32 {
    rng.gen()
}

fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
