// Must TRIP determinism: default hashers, wall clocks, OS entropy.

use std::collections::HashMap;

struct Index {
    by_id: HashMap<u64, String>,
    members: HashSet<u64>,
}

fn timing() -> u64 {
    let t0 = Instant::now();
    work();
    t0.elapsed().as_nanos() as u64
}

fn stamp() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_secs()
}

fn roll() -> u32 {
    thread_rng().gen()
}
