// EventKind vocabulary for the event-coverage fixtures: one variant that is
// emitted, one that nobody constructs, and one whose gap is deliberate.

pub enum EventKind {
    /// Emitted by the companion fixture.
    Used { op: u64 },
    /// Never constructed anywhere — must trip event-coverage.
    NeverEmitted { shard: u32 },
    // switchfs-lint: allow(event-coverage) reserved for the next protocol revision, emitter lands with it
    Reserved,
}
