// The default-hasher finding is suppressed with a justified allow.

// switchfs-lint: allow(determinism) alias definition site; the aliases pin an explicit hasher
use std::collections::{HashMap, HashSet};

pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;
