// Must TRIP persist-ordering: ordering-critical appends that escape onto
// the network unflushed (or are never flushed at all).

impl Server {
    fn send_before_flush(&self, txn_id: u64, commit: bool) {
        let marker = TxnMarker::Decided { txn_id, commit };
        self.durable.borrow_mut().wal.append(WalOp::txn(marker));
        self.net.send(self.coordinator, decision_msg(txn_id, commit));
        self.durable.borrow_mut().wal.flush();
    }

    fn never_flushed(&self, shard: u32, target: ServerId) {
        let marker = MigrationMarker::Started { shard, target };
        self.durable.borrow_mut().wal.append(WalOp::migration(marker));
        self.net.send(self.cfg.node_of(target), freeze_msg(shard));
    }
}
