// Companion emission site for the event-coverage fixtures.

fn instrumented(&self, op: u64) {
    self.trace_event(None, EventKind::Used { op });
}
