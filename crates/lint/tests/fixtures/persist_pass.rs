// Must PASS persist-ordering: the flush barrier runs before anything
// escapes onto the network, and non-critical appends are exempt.

impl Server {
    fn flush_then_send(&self, txn_id: u64, commit: bool) {
        let marker = TxnMarker::Decided { txn_id, commit };
        self.durable.borrow_mut().wal.append(WalOp::txn(marker));
        self.durable.borrow_mut().wal.flush();
        self.net.send(self.coordinator, decision_msg(txn_id, commit));
    }

    fn plain_append_may_defer_flush(&self, record: WalOp) {
        // No ordering-critical marker in this body: batching the flush is
        // allowed for plain operation records.
        self.durable.borrow_mut().wal.append(record);
        self.net.send(self.peer, ack_msg());
    }
}
