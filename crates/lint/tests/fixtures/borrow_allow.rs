// The finding is suppressed with a justified allow on the preceding line.

async fn deliberately_held(cell: &RefCell<u32>) {
    let guard = cell.borrow_mut();
    // switchfs-lint: allow(borrow-across-await) single-task section, the await cannot re-enter this cell
    do_io().await;
    *guard += 1;
}
