// The persist-ordering finding is suppressed with a justified allow.

impl Server {
    fn deliberate_early_send(&self, txn_id: u64, commit: bool) {
        let marker = TxnMarker::Decided { txn_id, commit };
        self.durable.borrow_mut().wal.append(WalOp::txn(marker));
        // switchfs-lint: allow(persist-ordering) advisory hint only; the real decision is resent after the flush barrier
        self.net.send(self.coordinator, hint_msg(txn_id));
        self.durable.borrow_mut().wal.flush();
    }
}
