// Must PASS borrow-across-await: guards that provably end before the await.

async fn scoped_guard(cell: &RefCell<u32>) {
    {
        let mut guard = cell.borrow_mut();
        *guard += 1;
    } // guard dies here
    do_io().await;
}

async fn dropped_guard(cell: &RefCell<u32>) {
    let guard = cell.borrow_mut();
    drop(guard);
    do_io().await;
}

async fn statement_temporary_dies_first(cell: &RefCell<Durable>) {
    // The guard temporary dies at the end of this statement, before the
    // next statement's await — the workhorse pattern of `apply_and_log`.
    let lsn = cell.borrow_mut().wal.append_sized(record, size);
    cpu.run(cost).await;
    let _ = lsn;
}

async fn guard_inside_async_block(cell: &RefCell<u32>) {
    // The inner async block is its own future: the guard taken inside it is
    // not held across the spawn site's await points.
    spawn(async move {
        let g = cell.borrow_mut();
        let _ = *g;
    });
    do_io().await;
}
