//! Fixture-based rule tests: for every rule, one snippet that must trip,
//! one that must pass, and one exercising the `allow(...)` suppression
//! comment. Fixtures live under `tests/fixtures/` (not compiled — they are
//! data for the analyzer, and the trip ones would not even build).

use std::collections::BTreeSet;
use std::path::Path;

use switchfs_lint::lexer::{lex, strip_cfg_test};
use switchfs_lint::{
    apply_suppressions, lint_source, rules, Finding, RuleSet, RULE_BORROW, RULE_DETERMINISM,
    RULE_DIRECTIVE, RULE_EVENT_COVERAGE, RULE_PERSIST,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a fixture and applies its suppression directives, returning
/// (kept, suppressed).
fn run(name: &str) -> (Vec<Finding>, Vec<Finding>) {
    let source = fixture(name);
    let (findings, directives) = lint_source(&source, RuleSet::all());
    apply_suppressions(findings, &directives)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- borrow ---

#[test]
fn borrow_trip_fixture_trips() {
    let (kept, _) = run("borrow_trip.rs");
    let hits: Vec<_> = kept.iter().filter(|f| f.rule == RULE_BORROW).collect();
    assert_eq!(
        hits.len(),
        3,
        "one finding per detector shape (let-bound, same-statement, scrutinee): {hits:?}"
    );
}

#[test]
fn borrow_pass_fixture_passes() {
    let (kept, suppressed) = run("borrow_pass.rs");
    assert!(kept.is_empty(), "clean fixture flagged: {kept:?}");
    assert!(
        suppressed.is_empty(),
        "nothing to suppress in a clean fixture"
    );
}

#[test]
fn borrow_allow_fixture_suppresses() {
    let (kept, suppressed) = run("borrow_allow.rs");
    assert!(kept.is_empty(), "allow directive ignored: {kept:?}");
    assert_eq!(rules_of(&suppressed), vec![RULE_BORROW]);
}

// ----------------------------------------------------------- determinism ---

#[test]
fn determinism_trip_fixture_trips() {
    let (kept, _) = run("determinism_trip.rs");
    let hits = rules_of(&kept);
    assert_eq!(
        hits.iter().filter(|r| **r == RULE_DETERMINISM).count(),
        6,
        "import + HashMap field + HashSet field + Instant + SystemTime + thread_rng: {kept:?}"
    );
}

#[test]
fn determinism_pass_fixture_passes() {
    let (kept, _) = run("determinism_pass.rs");
    assert!(kept.is_empty(), "clean fixture flagged: {kept:?}");
}

#[test]
fn determinism_allow_fixture_suppresses() {
    let (kept, suppressed) = run("determinism_allow.rs");
    assert!(kept.is_empty(), "allow directive ignored: {kept:?}");
    // One directive covers both the HashMap and the HashSet finding on the
    // following import line; the alias lines carry explicit hashers.
    assert_eq!(
        rules_of(&suppressed),
        vec![RULE_DETERMINISM, RULE_DETERMINISM]
    );
}

// ------------------------------------------------------- persist-ordering ---

#[test]
fn persist_trip_fixture_trips() {
    let (kept, _) = run("persist_trip.rs");
    let hits: Vec<_> = kept.iter().filter(|f| f.rule == RULE_PERSIST).collect();
    assert_eq!(
        hits.len(),
        2,
        "send-before-flush and never-flushed must both trip: {hits:?}"
    );
}

#[test]
fn persist_pass_fixture_passes() {
    let (kept, _) = run("persist_pass.rs");
    assert!(kept.is_empty(), "clean fixture flagged: {kept:?}");
}

#[test]
fn persist_allow_fixture_suppresses() {
    let (kept, suppressed) = run("persist_allow.rs");
    assert!(kept.is_empty(), "allow directive ignored: {kept:?}");
    assert_eq!(rules_of(&suppressed), vec![RULE_PERSIST]);
}

// --------------------------------------------------------- event-coverage ---

/// Runs the cross-file event-coverage rule over the enum fixture plus the
/// given emission sources, then applies the enum file's own directives.
fn run_coverage(emission_sources: &[&str]) -> (Vec<Finding>, Vec<Finding>) {
    let enum_src = fixture("event_enum.rs");
    let lexed = lex(&enum_src);
    let variants = rules::event_kind_variants(&strip_cfg_test(lexed.tokens));
    assert_eq!(variants.len(), 3, "fixture defines three variants");
    let mut used = BTreeSet::new();
    for src in emission_sources {
        let lexed = lex(src);
        rules::event_kind_uses(&strip_cfg_test(lexed.tokens), &mut used);
    }
    let mut findings = Vec::new();
    rules::event_coverage(&variants, &used, &mut findings);
    apply_suppressions(findings, &lexed_directives(&enum_src))
}

fn lexed_directives(source: &str) -> Vec<switchfs_lint::lexer::Directive> {
    lex(source).directives
}

#[test]
fn event_coverage_trips_on_unemitted_variant_and_suppresses_reserved() {
    let uses = fixture("event_uses.rs");
    let (kept, suppressed) = run_coverage(&[&uses]);
    // `NeverEmitted` trips; `Reserved` is suppressed by its justified allow;
    // `Used` is covered by the emission fixture.
    assert_eq!(rules_of(&kept), vec![RULE_EVENT_COVERAGE]);
    assert!(kept[0].message.contains("NeverEmitted"), "{:?}", kept[0]);
    assert_eq!(rules_of(&suppressed), vec![RULE_EVENT_COVERAGE]);
    assert!(suppressed[0].message.contains("Reserved"));
}

#[test]
fn event_coverage_passes_when_every_variant_is_emitted() {
    let uses = fixture("event_uses.rs");
    let extra = "fn f() { record(EventKind::NeverEmitted { shard: 0 }); }";
    let (kept, _) = run_coverage(&[&uses, extra]);
    assert!(
        kept.is_empty(),
        "all variants emitted, yet flagged: {kept:?}"
    );
}

// ------------------------------------------------------- directive health ---

#[test]
fn suppression_without_reason_is_itself_a_finding() {
    let src = "// switchfs-lint: allow(determinism)\nuse std::collections::HashMap;\n";
    let (findings, directives) = lint_source(src, RuleSet::all());
    let (kept, suppressed) = apply_suppressions(findings, &directives);
    // The reasonless directive does not suppress, and is reported itself.
    assert!(suppressed.is_empty());
    let rules = rules_of(&kept);
    assert!(rules.contains(&RULE_DIRECTIVE), "{kept:?}");
    assert!(rules.contains(&RULE_DETERMINISM), "{kept:?}");
}

#[test]
fn malformed_and_unknown_rule_directives_are_findings() {
    let src = "// switchfs-lint: disallow everything\n// switchfs-lint: allow(no-such-rule) because\nfn f() {}\n";
    let (findings, directives) = lint_source(src, RuleSet::all());
    let (kept, _) = apply_suppressions(findings, &directives);
    assert_eq!(
        rules_of(&kept),
        vec![RULE_DIRECTIVE, RULE_DIRECTIVE],
        "{kept:?}"
    );
}

#[test]
fn cfg_test_items_are_exempt() {
    let src = r#"
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
    }
}
"#;
    let (findings, _) = lint_source(src, RuleSet::all());
    assert!(findings.is_empty(), "test-only code flagged: {findings:?}");
}
