//! Concrete workload builders for every experiment in §7.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mixes::OpMix;
use crate::namespace::NamespaceSpec;
use crate::ops::{OpKind, WorkItem};

/// Builds operation streams against a namespace.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    namespace: NamespaceSpec,
    rng: StdRng,
    /// Fraction of operations directed at the "hot" fraction of directories
    /// (the paper's synthetic end-to-end workload sends 80 % of operations to
    /// 20 % of directories).
    skew: Option<(f64, f64)>,
    next_new_file: usize,
}

impl WorkloadBuilder {
    /// Creates a builder over a namespace with a deterministic RNG seed.
    pub fn new(namespace: NamespaceSpec, seed: u64) -> Self {
        WorkloadBuilder {
            namespace,
            rng: StdRng::seed_from_u64(seed),
            skew: None,
            next_new_file: 0,
        }
    }

    /// The namespace this builder targets.
    pub fn namespace(&self) -> &NamespaceSpec {
        &self.namespace
    }

    /// Directs `hot_fraction` of the operations at `hot_dirs_fraction` of the
    /// directories (e.g. `0.8, 0.2` for the 80/20 skew of §7.6).
    pub fn with_skew(mut self, hot_fraction: f64, hot_dirs_fraction: f64) -> Self {
        self.skew = Some((hot_fraction, hot_dirs_fraction));
        self
    }

    fn pick_dir(&mut self) -> usize {
        let dirs = self.namespace.dirs.max(1);
        match self.skew {
            Some((hot_frac, hot_dirs_frac)) => {
                let hot_dirs = ((dirs as f64 * hot_dirs_frac).ceil() as usize).max(1);
                if self.rng.gen::<f64>() < hot_frac {
                    self.rng.gen_range(0..hot_dirs)
                } else if hot_dirs < dirs {
                    self.rng.gen_range(hot_dirs..dirs)
                } else {
                    self.rng.gen_range(0..dirs)
                }
            }
            None => self.rng.gen_range(0..dirs),
        }
    }

    fn pick_existing_file(&mut self) -> String {
        let d = self.pick_dir();
        let f = self.rng.gen_range(0..self.namespace.files_per_dir.max(1));
        self.namespace.file_path(d, f)
    }

    fn fresh_file(&mut self) -> String {
        let d = self.pick_dir();
        let f = self.namespace.files_per_dir + self.next_new_file;
        self.next_new_file += 1;
        self.namespace.file_path(d, f)
    }

    /// `count` operations of a single kind on uniformly (or skew-) selected
    /// targets — the per-operation microbenchmarks of Fig. 12 and Fig. 13.
    pub fn uniform(&mut self, kind: OpKind, count: usize) -> Vec<WorkItem> {
        (0..count).map(|i| self.one(kind, i)).collect()
    }

    fn one(&mut self, kind: OpKind, i: usize) -> WorkItem {
        match kind {
            OpKind::Create | OpKind::Write => WorkItem::new(kind, self.fresh_file()),
            OpKind::Mkdir => {
                let d = self.pick_dir();
                WorkItem::new(kind, format!("{}/sub{}", self.namespace.dir_path(d), i))
            }
            OpKind::Rmdir => {
                let d = self.pick_dir();
                WorkItem::new(kind, format!("{}/sub{}", self.namespace.dir_path(d), i))
            }
            OpKind::Statdir | OpKind::Readdir => {
                let d = self.pick_dir();
                WorkItem::new(kind, self.namespace.dir_path(d))
            }
            OpKind::Rename => {
                let src = self.pick_existing_file();
                let dst = self.fresh_file();
                WorkItem::rename(src, dst)
            }
            OpKind::Delete => WorkItem::new(kind, self.pick_existing_file()),
            _ => WorkItem::new(kind, self.pick_existing_file()),
        }
    }

    /// `mkdir` targets paired with later `rmdir`s so directory-removal
    /// benchmarks operate on directories that exist.
    pub fn mkdir_then_rmdir(&mut self, count: usize) -> (Vec<WorkItem>, Vec<WorkItem>) {
        let mut mkdirs = Vec::with_capacity(count);
        let mut rmdirs = Vec::with_capacity(count);
        for i in 0..count {
            let d = self.pick_dir();
            let path = format!("{}/sub{}", self.namespace.dir_path(d), i);
            mkdirs.push(WorkItem::new(OpKind::Mkdir, path.clone()));
            rmdirs.push(WorkItem::new(OpKind::Rmdir, path));
        }
        (mkdirs, rmdirs)
    }

    /// A mixed workload of `count` operations drawn from `mix` — the
    /// synthetic end-to-end workload of Fig. 19 (combine with
    /// [`WorkloadBuilder::with_skew`] for the 80/20 distribution).
    pub fn mixed(&mut self, mix: &OpMix, count: usize) -> Vec<WorkItem> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let kind = mix.sample(&mut self.rng);
            out.push(self.one(kind, i));
        }
        out
    }

    /// Operation bursts (Fig. 17): successive groups of `burst_size` creates,
    /// each group in a different directory, `total` operations overall.
    pub fn create_bursts(&mut self, burst_size: usize, total: usize) -> Vec<WorkItem> {
        let mut out = Vec::with_capacity(total);
        let mut dir = 0usize;
        let mut in_burst = 0usize;
        for i in 0..total {
            if in_burst == burst_size {
                dir = (dir + 1) % self.namespace.dirs.max(1);
                in_burst = 0;
            }
            out.push(WorkItem::new(
                OpKind::Create,
                self.namespace
                    .file_path(dir, self.namespace.files_per_dir + i),
            ));
            in_burst += 1;
        }
        out
    }

    /// The Fig. 18 sequence: `creates` file creations in one directory
    /// followed by a single `statdir`, which has to aggregate them.
    pub fn creates_then_statdir(&mut self, creates: usize) -> Vec<WorkItem> {
        let mut out = Vec::with_capacity(creates + 1);
        for i in 0..creates {
            out.push(WorkItem::new(
                OpKind::Create,
                self.namespace
                    .file_path(0, self.namespace.files_per_dir + i),
            ));
        }
        out.push(WorkItem::new(OpKind::Statdir, self.namespace.dir_path(0)));
        out
    }

    /// A CNN-training-like trace (Tab. 5): the dataset lifecycle — create the
    /// class files (download), read them repeatedly (epochs), then delete
    /// them (cleanup).
    pub fn cnn_training_trace(&mut self, files: usize, read_passes: usize) -> Vec<WorkItem> {
        let mut out = Vec::new();
        let per_dir = (files / self.namespace.dirs.max(1)).max(1);
        for d in 0..self.namespace.dirs {
            for f in 0..per_dir {
                out.push(WorkItem::new(
                    OpKind::Create,
                    self.namespace
                        .file_path(d, self.namespace.files_per_dir + f),
                ));
            }
        }
        for _ in 0..read_passes {
            for d in 0..self.namespace.dirs {
                for f in 0..per_dir {
                    let path = self
                        .namespace
                        .file_path(d, self.namespace.files_per_dir + f);
                    out.push(WorkItem::new(OpKind::Open, path.clone()));
                    out.push(WorkItem::new(OpKind::Read, path.clone()));
                    out.push(WorkItem::new(OpKind::Close, path));
                }
            }
        }
        for d in 0..self.namespace.dirs {
            for f in 0..per_dir {
                out.push(WorkItem::new(
                    OpKind::Delete,
                    self.namespace
                        .file_path(d, self.namespace.files_per_dir + f),
                ));
            }
        }
        out
    }

    /// A thumbnail-generation trace (Tab. 5): read each source image, create
    /// and write its thumbnail.
    pub fn thumbnail_trace(&mut self, images: usize) -> Vec<WorkItem> {
        let mut out = Vec::new();
        for i in 0..images {
            let d = i % self.namespace.dirs.max(1);
            let src = self
                .namespace
                .file_path(d, i % self.namespace.files_per_dir.max(1));
            let thumb = self
                .namespace
                .file_path(d, self.namespace.files_per_dir + images + i);
            out.push(WorkItem::new(OpKind::Open, src.clone()));
            out.push(WorkItem::new(OpKind::Read, src.clone()));
            out.push(WorkItem::new(OpKind::Create, thumb.clone()));
            out.push(WorkItem::new(OpKind::Write, thumb.clone()));
            out.push(WorkItem::new(OpKind::Close, src));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn builder(dirs: usize, files: usize) -> WorkloadBuilder {
        WorkloadBuilder::new(NamespaceSpec::multi_dir(dirs, files), 1)
    }

    #[test]
    fn uniform_creates_are_fresh_paths() {
        let mut b = builder(4, 10);
        let items = b.uniform(OpKind::Create, 100);
        let paths: HashSet<_> = items.iter().map(|w| w.path.clone()).collect();
        assert_eq!(paths.len(), 100, "creates must target distinct new files");
    }

    #[test]
    fn uniform_stats_hit_existing_files() {
        let mut b = builder(4, 10);
        for item in b.uniform(OpKind::Stat, 50) {
            let f: usize = item
                .path
                .rsplit('f')
                .next()
                .unwrap()
                .parse()
                .expect("file index");
            assert!(f < 10);
        }
    }

    #[test]
    fn skew_concentrates_load() {
        let mut b = builder(100, 10).with_skew(0.8, 0.2);
        let items = b.uniform(OpKind::Stat, 5000);
        let hot = items
            .iter()
            .filter(|w| {
                let dir: usize = w.path[4..8].parse().unwrap();
                dir < 20
            })
            .count();
        let frac = hot as f64 / items.len() as f64;
        assert!(frac > 0.75 && frac < 0.85, "hot fraction {frac}");
    }

    #[test]
    fn bursts_switch_directories_every_burst() {
        let mut b = builder(8, 0);
        let items = b.create_bursts(10, 40);
        assert_eq!(items.len(), 40);
        let dir_of = |w: &WorkItem| w.path[4..8].parse::<usize>().unwrap();
        assert_eq!(dir_of(&items[0]), dir_of(&items[9]));
        assert_ne!(dir_of(&items[0]), dir_of(&items[10]));
    }

    #[test]
    fn creates_then_statdir_ends_with_statdir() {
        let mut b = builder(1, 5);
        let items = b.creates_then_statdir(20);
        assert_eq!(items.len(), 21);
        assert_eq!(items.last().unwrap().kind, OpKind::Statdir);
    }

    #[test]
    fn traces_have_expected_shape() {
        let mut b = builder(10, 5);
        let cnn = b.cnn_training_trace(100, 2);
        let creates = cnn.iter().filter(|w| w.kind == OpKind::Create).count();
        let deletes = cnn.iter().filter(|w| w.kind == OpKind::Delete).count();
        assert_eq!(creates, deletes, "every downloaded file is removed");
        let mut b = builder(10, 5);
        let thumb = b.thumbnail_trace(50);
        assert_eq!(thumb.iter().filter(|w| w.kind == OpKind::Write).count(), 50);
    }

    #[test]
    fn mkdir_then_rmdir_pairs_match() {
        let mut b = builder(4, 0);
        let (mk, rm) = b.mkdir_then_rmdir(10);
        assert_eq!(mk.len(), 10);
        for (m, r) in mk.iter().zip(rm.iter()) {
            assert_eq!(m.path, r.path);
        }
    }

    #[test]
    fn mixed_workload_follows_mix() {
        let mut b = builder(16, 20);
        let items = b.mixed(&OpMix::pangu(), 2000);
        let dir_updates = items.iter().filter(|w| w.kind.is_dir_update()).count() as f64;
        let frac = dir_updates / items.len() as f64;
        assert!((frac - 0.31).abs() < 0.05, "dir update fraction {frac}");
    }
}
