//! Workload generators reproducing the SwitchFS evaluation workloads (§7).
//!
//! * [`ops`] — the operation/work-item vocabulary shared with the cluster
//!   driver.
//! * [`mixes`] — published operation mixes: the PanguFS trace ratios of
//!   Tab. 2, and the synthetic / CNN-training / thumbnail mixes of Tab. 5.
//! * [`namespace`] — namespace specifications (how many directories, how
//!   many files per directory) and deterministic path naming.
//! * [`generators`] — the concrete workload builders: single-large-directory
//!   and multi-directory microbenchmarks (Fig. 12, Fig. 13), operation
//!   bursts (Fig. 17), aggregation-overhead sequences (Fig. 18), skewed
//!   mixed workloads and the real-world-trace replicas (Fig. 19).

pub mod generators;
pub mod mixes;
pub mod namespace;
pub mod ops;

pub use generators::WorkloadBuilder;
pub use mixes::OpMix;
pub use namespace::NamespaceSpec;
pub use ops::{OpKind, WorkItem};
