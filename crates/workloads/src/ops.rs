//! The operation vocabulary of generated workloads.

use serde::{Deserialize, Serialize};

/// A metadata (or data) operation kind, as named in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Create a regular file.
    Create,
    /// Delete a regular file.
    Delete,
    /// Create a directory.
    Mkdir,
    /// Remove a directory.
    Rmdir,
    /// Read file attributes.
    Stat,
    /// Read directory attributes.
    Statdir,
    /// List a directory.
    Readdir,
    /// Open a file.
    Open,
    /// Close a file.
    Close,
    /// Change permissions.
    Chmod,
    /// Rename a file.
    Rename,
    /// Read file data (end-to-end workloads only).
    Read,
    /// Write file data (end-to-end workloads only).
    Write,
}

impl OpKind {
    /// The name used in tables and figures.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::Delete => "delete",
            OpKind::Mkdir => "mkdir",
            OpKind::Rmdir => "rmdir",
            OpKind::Stat => "stat",
            OpKind::Statdir => "statdir",
            OpKind::Readdir => "readdir",
            OpKind::Open => "open",
            OpKind::Close => "close",
            OpKind::Chmod => "chmod",
            OpKind::Rename => "rename",
            OpKind::Read => "read",
            OpKind::Write => "write",
        }
    }

    /// True for operations that update directory metadata (Tab. 2's
    /// "Dir. Update" category).
    pub fn is_dir_update(&self) -> bool {
        matches!(
            self,
            OpKind::Create | OpKind::Delete | OpKind::Mkdir | OpKind::Rmdir | OpKind::Rename
        )
    }

    /// True for operations that read directory metadata (Tab. 2's
    /// "Dir. Read" category).
    pub fn is_dir_read(&self) -> bool {
        matches!(self, OpKind::Statdir | OpKind::Readdir)
    }

    /// True for data-plane operations.
    pub fn is_data(&self) -> bool {
        matches!(self, OpKind::Read | OpKind::Write)
    }
}

/// One unit of work for the cluster driver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkItem {
    /// What to do.
    pub kind: OpKind,
    /// The target path.
    pub path: String,
    /// Destination path for `rename`.
    pub dst: Option<String>,
}

impl WorkItem {
    /// A non-rename work item.
    pub fn new(kind: OpKind, path: impl Into<String>) -> Self {
        WorkItem {
            kind,
            path: path.into(),
            dst: None,
        }
    }

    /// A rename work item.
    pub fn rename(src: impl Into<String>, dst: impl Into<String>) -> Self {
        WorkItem {
            kind: OpKind::Rename,
            path: src.into(),
            dst: Some(dst.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_table2_categories() {
        assert!(OpKind::Create.is_dir_update());
        assert!(OpKind::Rename.is_dir_update());
        assert!(!OpKind::Stat.is_dir_update());
        assert!(OpKind::Readdir.is_dir_read());
        assert!(!OpKind::Open.is_dir_read());
        assert!(OpKind::Read.is_data());
        assert!(!OpKind::Create.is_data());
    }

    #[test]
    fn work_item_constructors() {
        let w = WorkItem::new(OpKind::Create, "/d/f");
        assert_eq!(w.dst, None);
        let r = WorkItem::rename("/a", "/b");
        assert_eq!(r.kind, OpKind::Rename);
        assert_eq!(r.dst.as_deref(), Some("/b"));
        assert_eq!(OpKind::Statdir.name(), "statdir");
    }
}
