//! Published operation mixes.
//!
//! * Tab. 2 — metadata-operation ratios from three deployed PanguFS
//!   instances at Alibaba (the motivation for asynchronous updates: 30.76 %
//!   of operations update directories, only 4.19 % read them).
//! * Tab. 5 — the end-to-end workloads: data-center services (synthetic),
//!   CNN training, and thumbnail generation.

use crate::ops::OpKind;
use rand::Rng;

/// A weighted mix of operations.
#[derive(Debug, Clone, PartialEq)]
pub struct OpMix {
    /// `(operation, weight)` pairs; weights need not sum to 1.
    pub weights: Vec<(OpKind, f64)>,
}

impl OpMix {
    /// Creates a mix from `(operation, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero.
    pub fn new(weights: Vec<(OpKind, f64)>) -> Self {
        assert!(
            weights.iter().any(|(_, w)| *w > 0.0),
            "an operation mix needs at least one positive weight"
        );
        OpMix { weights }
    }

    /// Tab. 2: the PanguFS metadata-operation ratios.
    pub fn pangu() -> Self {
        OpMix::new(vec![
            (OpKind::Create, 9.58),
            (OpKind::Delete, 11.88),
            (OpKind::Mkdir, 0.01),
            (OpKind::Rmdir, 0.01),
            (OpKind::Rename, 9.29),
            (OpKind::Statdir, 0.28),
            (OpKind::Readdir, 3.91),
            (OpKind::Open, 26.30),
            (OpKind::Close, 26.29),
            (OpKind::Stat, 12.35),
            (OpKind::Chmod, 0.10),
        ])
    }

    /// Tab. 5, "Data Center Services": the synthetic end-to-end workload
    /// (metadata only — the paper omits data access for this one).
    pub fn datacenter_services() -> Self {
        OpMix::new(vec![
            (OpKind::Open, 26.3),
            (OpKind::Close, 26.3),
            (OpKind::Stat, 12.4),
            (OpKind::Create, 9.58),
            (OpKind::Delete, 11.9),
            (OpKind::Rename, 9.3),
            (OpKind::Chmod, 0.1),
            (OpKind::Readdir, 3.9),
            (OpKind::Statdir, 0.2),
        ])
    }

    /// Tab. 5, "CNN Training": ALEXNET on ImageNet — small files grouped
    /// into class directories, full lifecycle (download, access, removal).
    pub fn cnn_training() -> Self {
        OpMix::new(vec![
            (OpKind::Open, 21.4),
            (OpKind::Close, 21.4),
            (OpKind::Stat, 21.4),
            (OpKind::Read, 14.2),
            (OpKind::Write, 7.1),
            (OpKind::Create, 7.1),
            (OpKind::Delete, 7.1),
            (OpKind::Mkdir, 0.1),
            (OpKind::Rmdir, 0.1),
            (OpKind::Statdir, 0.1),
            (OpKind::Readdir, 0.1),
        ])
    }

    /// Tab. 5, "Thumbnail": read 1 million images, write thumbnails.
    pub fn thumbnail() -> Self {
        OpMix::new(vec![
            (OpKind::Open, 21.95),
            (OpKind::Close, 21.95),
            (OpKind::Stat, 21.9),
            (OpKind::Read, 12.2),
            (OpKind::Write, 10.9),
            (OpKind::Create, 10.9),
            (OpKind::Mkdir, 0.1),
            (OpKind::Statdir, 0.1),
            (OpKind::Readdir, 0.1),
        ])
    }

    /// The chaos-mix: a fault-injection workload deliberately heavy in
    /// namespace *mutations* (creates, deletes, renames, directory
    /// lifecycle) with enough directory reads to force aggregations, so
    /// every recovery path — WAL replay, re-aggregation, 2PC decision
    /// re-query — is exercised while the nemesis schedules faults.
    pub fn chaos() -> Self {
        OpMix::new(vec![
            (OpKind::Create, 24.0),
            (OpKind::Delete, 14.0),
            (OpKind::Rename, 18.0),
            (OpKind::Mkdir, 6.0),
            (OpKind::Rmdir, 4.0),
            (OpKind::Stat, 14.0),
            (OpKind::Statdir, 8.0),
            (OpKind::Readdir, 8.0),
            (OpKind::Chmod, 4.0),
        ])
    }

    /// Total weight.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().map(|(_, w)| w).sum()
    }

    /// The fraction of operations that update directories.
    pub fn dir_update_fraction(&self) -> f64 {
        let upd: f64 = self
            .weights
            .iter()
            .filter(|(k, _)| k.is_dir_update())
            .map(|(_, w)| w)
            .sum();
        upd / self.total_weight()
    }

    /// The fraction of operations that read directories.
    pub fn dir_read_fraction(&self) -> f64 {
        let rd: f64 = self
            .weights
            .iter()
            .filter(|(k, _)| k.is_dir_read())
            .map(|(_, w)| w)
            .sum();
        rd / self.total_weight()
    }

    /// Samples one operation kind.
    pub fn sample(&self, rng: &mut impl Rng) -> OpKind {
        let total = self.total_weight();
        let mut x = rng.gen::<f64>() * total;
        for (kind, w) in &self.weights {
            if x < *w {
                return *kind;
            }
            x -= w;
        }
        self.weights.last().expect("non-empty").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pangu_mix_matches_table2_imbalance() {
        let mix = OpMix::pangu();
        // Tab. 2: ~30.76% directory updates vs ~4.19% directory reads.
        let upd = mix.dir_update_fraction();
        let rd = mix.dir_read_fraction();
        assert!((upd - 0.3076).abs() < 0.01, "dir update fraction {upd}");
        assert!((rd - 0.0419).abs() < 0.01, "dir read fraction {rd}");
        // The pigeonhole bound of §3.1: at least 86.3% of directory updates
        // are not immediately followed by a directory read.
        assert!((upd - rd) / upd > 0.85);
    }

    #[test]
    fn sampling_respects_weights_roughly() {
        let mix = OpMix::new(vec![(OpKind::Stat, 9.0), (OpKind::Create, 1.0)]);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let stats = (0..n)
            .filter(|_| mix.sample(&mut rng) == OpKind::Stat)
            .count();
        let frac = stats as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.03, "stat fraction {frac}");
    }

    #[test]
    fn all_published_mixes_are_well_formed() {
        for mix in [
            OpMix::pangu(),
            OpMix::datacenter_services(),
            OpMix::cnn_training(),
            OpMix::thumbnail(),
        ] {
            assert!(mix.total_weight() > 90.0 && mix.total_weight() < 110.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_mix_panics() {
        let _ = OpMix::new(vec![(OpKind::Stat, 0.0)]);
    }
}
