//! Namespace specifications: the directory/file populations experiments run
//! against.

use serde::{Deserialize, Serialize};

/// A flat namespace of `dirs` top-level directories each holding
/// `files_per_dir` files — the shape of both evaluation namespaces
/// ("a single very large directory" and "10 million files uniformly
/// distributed across 1024 directories", §7.2.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamespaceSpec {
    /// Number of top-level directories.
    pub dirs: usize,
    /// Number of pre-existing files in each directory.
    pub files_per_dir: usize,
    /// Prefix of directory names.
    pub dir_prefix: String,
    /// Prefix of file names.
    pub file_prefix: String,
}

impl NamespaceSpec {
    /// A single large directory holding `files` files.
    pub fn single_large_dir(files: usize) -> Self {
        NamespaceSpec {
            dirs: 1,
            files_per_dir: files,
            dir_prefix: "bigdir".into(),
            file_prefix: "f".into(),
        }
    }

    /// `dirs` directories each holding `files_per_dir` files.
    pub fn multi_dir(dirs: usize, files_per_dir: usize) -> Self {
        NamespaceSpec {
            dirs,
            files_per_dir,
            dir_prefix: "dir".into(),
            file_prefix: "f".into(),
        }
    }

    /// Path of directory `d`.
    pub fn dir_path(&self, d: usize) -> String {
        format!("/{}{:04}", self.dir_prefix, d)
    }

    /// Path of file `f` inside directory `d`.
    pub fn file_path(&self, d: usize, f: usize) -> String {
        format!("/{}{:04}/{}{}", self.dir_prefix, d, self.file_prefix, f)
    }

    /// Every directory path.
    pub fn all_dirs(&self) -> Vec<String> {
        (0..self.dirs).map(|d| self.dir_path(d)).collect()
    }

    /// Total number of pre-existing files.
    pub fn total_files(&self) -> usize {
        self.dirs * self.files_per_dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_deterministic_and_distinct() {
        let ns = NamespaceSpec::multi_dir(4, 10);
        assert_eq!(ns.all_dirs().len(), 4);
        assert_eq!(ns.total_files(), 40);
        assert_ne!(ns.file_path(0, 1), ns.file_path(1, 1));
        assert_ne!(ns.file_path(0, 1), ns.file_path(0, 2));
        assert!(ns.file_path(2, 3).starts_with(&ns.dir_path(2)));
    }

    #[test]
    fn single_large_dir_has_one_dir() {
        let ns = NamespaceSpec::single_large_dir(100);
        assert_eq!(ns.dirs, 1);
        assert_eq!(ns.total_files(), 100);
    }
}
