//! Per-stage register arrays and the three register actions of §6.3.
//!
//! A Tofino pipeline stage owns an array of 32-bit registers and can perform
//! one atomic read-modify-write per packet. SwitchFS defines three register
//! actions used by the dirty set (Fig. 10):
//!
//! * **register query** — compare the register with the tag;
//! * **conditional insert** — report whether the register equals zero or the
//!   tag, writing the tag if the register was zero;
//! * **conditional remove** — clear the register if it equals the tag.

/// One pipeline stage: an array of 32-bit registers indexed by the dirty-set
/// index field.
#[derive(Debug, Clone)]
pub struct RegisterStage {
    regs: Vec<u32>,
    occupied: usize,
}

impl RegisterStage {
    /// Creates a stage with `size` registers, all empty (zero).
    pub fn new(size: usize) -> Self {
        RegisterStage {
            regs: vec![0; size],
            occupied: 0,
        }
    }

    /// Number of registers in the stage.
    pub fn size(&self) -> usize {
        self.regs.len()
    }

    /// Number of non-empty registers.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Raw read of a register (used by tests and the recovery path that
    /// clears the switch).
    pub fn read(&self, index: usize) -> u32 {
        self.regs[index]
    }

    /// *Register query*: true if the register at `index` holds `tag`.
    pub fn query(&self, index: usize, tag: u32) -> bool {
        self.regs[index] == tag
    }

    /// *Conditional insert*: returns true if the register is empty or
    /// already holds `tag`; writes `tag` when the register was empty.
    pub fn conditional_insert(&mut self, index: usize, tag: u32) -> bool {
        let reg = &mut self.regs[index];
        if *reg == 0 {
            *reg = tag;
            self.occupied += 1;
            true
        } else {
            *reg == tag
        }
    }

    /// *Conditional remove*: clears the register if it holds `tag`; returns
    /// true if a value was cleared.
    pub fn conditional_remove(&mut self, index: usize, tag: u32) -> bool {
        let reg = &mut self.regs[index];
        if *reg == tag && tag != 0 {
            *reg = 0;
            self.occupied -= 1;
            true
        } else {
            false
        }
    }

    /// Clears every register (switch reboot, §5.4.2).
    pub fn clear(&mut self) {
        self.regs.iter_mut().for_each(|r| *r = 0);
        self.occupied = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditional_insert_fills_empty_register() {
        let mut s = RegisterStage::new(8);
        assert!(s.conditional_insert(3, 0xab));
        assert_eq!(s.read(3), 0xab);
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn conditional_insert_is_idempotent_for_same_tag() {
        let mut s = RegisterStage::new(8);
        assert!(s.conditional_insert(3, 0xab));
        assert!(s.conditional_insert(3, 0xab));
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn conditional_insert_rejects_occupied_register() {
        let mut s = RegisterStage::new(8);
        assert!(s.conditional_insert(3, 0xab));
        assert!(!s.conditional_insert(3, 0xcd));
        assert_eq!(s.read(3), 0xab);
    }

    #[test]
    fn conditional_remove_only_matching_tag() {
        let mut s = RegisterStage::new(8);
        s.conditional_insert(2, 0x11);
        assert!(!s.conditional_remove(2, 0x22));
        assert_eq!(s.read(2), 0x11);
        assert!(s.conditional_remove(2, 0x11));
        assert_eq!(s.read(2), 0);
        assert_eq!(s.occupied(), 0);
        // Removing from an empty register is a no-op.
        assert!(!s.conditional_remove(2, 0x11));
    }

    #[test]
    fn query_matches_exact_tag() {
        let mut s = RegisterStage::new(4);
        s.conditional_insert(1, 5);
        assert!(s.query(1, 5));
        assert!(!s.query(1, 6));
        assert!(!s.query(0, 5));
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = RegisterStage::new(4);
        s.conditional_insert(0, 1);
        s.conditional_insert(1, 2);
        s.clear();
        assert_eq!(s.occupied(), 0);
        assert_eq!(s.read(0), 0);
        assert_eq!(s.read(1), 0);
    }
}
