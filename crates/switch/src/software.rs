//! A software dirty set.
//!
//! §7.3.3 of the paper compares the in-network dirty set against two
//! server-based alternatives: a *dedicated server* that tracks all directory
//! states, and *owner-server tracking* where each directory's owner tracks
//! its own dirty state. Both alternatives keep the set in ordinary server
//! memory; this type is that data structure. Unlike the switch implementation
//! it has no set-associativity constraints, but every access costs server CPU
//! and an extra network round trip, which is exactly the overhead Fig. 15 and
//! Fig. 16 measure.

use std::collections::BTreeSet;

use switchfs_proto::{DirtyRet, DirtySetOp, DirtyState, Fingerprint};

/// A set-based dirty set with an optional capacity bound. Ordered set, not a
/// std `HashSet`: lookup-only today, but the aggregation path must be free
/// of std-`RandomState` so cross-process same-seed runs stay bit-identical.
#[derive(Debug, Clone, Default)]
pub struct SoftwareDirtySet {
    set: BTreeSet<u64>,
    capacity: Option<usize>,
    inserts: u64,
    queries: u64,
    removes: u64,
}

impl SoftwareDirtySet {
    /// Creates an unbounded software dirty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dirty set that rejects inserts beyond `capacity` entries.
    pub fn with_capacity_limit(capacity: usize) -> Self {
        SoftwareDirtySet {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Inserts a fingerprint; returns `false` if the capacity bound is hit.
    pub fn insert(&mut self, fp: Fingerprint) -> bool {
        self.inserts += 1;
        if let Some(cap) = self.capacity {
            if !self.set.contains(&fp.raw()) && self.set.len() >= cap {
                return false;
            }
        }
        self.set.insert(fp.raw());
        true
    }

    /// Queries a fingerprint.
    pub fn query(&mut self, fp: Fingerprint) -> bool {
        self.queries += 1;
        self.set.contains(&fp.raw())
    }

    /// Removes a fingerprint. Idempotent.
    pub fn remove(&mut self, fp: Fingerprint) {
        self.removes += 1;
        self.set.remove(&fp.raw());
    }

    /// Applies a [`DirtySetOp`] and returns the RPC-style result, mirroring
    /// the coordinator protocol of §7.3.3.
    pub fn apply(&mut self, op: DirtySetOp, fp: Fingerprint) -> DirtyRet {
        match op {
            DirtySetOp::Insert => {
                if self.insert(fp) {
                    DirtyRet::Inserted
                } else {
                    DirtyRet::Overflowed
                }
            }
            DirtySetOp::Query => DirtyRet::State(if self.query(fp) {
                DirtyState::Scattered
            } else {
                DirtyState::Normal
            }),
            DirtySetOp::Remove => {
                self.remove(fp);
                DirtyRet::Removed
            }
        }
    }

    /// Number of fingerprints currently tracked.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if no fingerprint is tracked.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Total operations served, used to report coordinator load.
    pub fn total_ops(&self) -> u64 {
        self.inserts + self.queries + self.removes
    }

    /// Clears the set.
    pub fn clear(&mut self) {
        self.set.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchfs_proto::{DirId, ServerId};

    fn fp(i: u64) -> Fingerprint {
        Fingerprint::of_dir(&DirId::generate(ServerId(0), i), "d")
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut s = SoftwareDirtySet::new();
        assert!(!s.query(fp(1)));
        assert!(s.insert(fp(1)));
        assert!(s.query(fp(1)));
        s.remove(fp(1));
        assert!(!s.query(fp(1)));
        assert_eq!(s.total_ops(), 5);
    }

    #[test]
    fn capacity_limit_rejects_new_entries_only() {
        let mut s = SoftwareDirtySet::with_capacity_limit(2);
        assert!(s.insert(fp(1)));
        assert!(s.insert(fp(2)));
        assert!(!s.insert(fp(3)));
        // Re-inserting an existing entry is always allowed.
        assert!(s.insert(fp(1)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn apply_matches_individual_operations() {
        let mut s = SoftwareDirtySet::new();
        assert_eq!(
            s.apply(DirtySetOp::Query, fp(9)),
            DirtyRet::State(DirtyState::Normal)
        );
        assert_eq!(s.apply(DirtySetOp::Insert, fp(9)), DirtyRet::Inserted);
        assert_eq!(
            s.apply(DirtySetOp::Query, fp(9)),
            DirtyRet::State(DirtyState::Scattered)
        );
        assert_eq!(s.apply(DirtySetOp::Remove, fp(9)), DirtyRet::Removed);
        assert!(s.is_empty());
    }

    #[test]
    fn clear_empties_the_set() {
        let mut s = SoftwareDirtySet::new();
        for i in 0..10 {
            s.insert(fp(i));
        }
        s.clear();
        assert!(s.is_empty());
    }
}
