//! The programmable-switch data plane of SwitchFS (§6).
//!
//! This crate models the Tofino pipeline behaviourally but faithfully to the
//! properties the paper's correctness argument relies on:
//!
//! * [`registers`] — per-stage register arrays and the three register
//!   actions (*register query*, *conditional insert*, *conditional remove*)
//!   of §6.3.
//! * [`dirty_set`] — the multi-stage, set-associative in-network dirty set:
//!   `insert`, `query` and `remove` of 49-bit directory fingerprints, with
//!   overflow detection. Operations on the same fingerprint are linearizable
//!   because each simulated packet is processed to completion before the
//!   next (the pipeline's per-stage atomicity and ordered execution).
//! * [`program`] — the full SwitchFS data-plane program: parser (reserved
//!   UDP ports), router (by destination or by fingerprint prefix),
//!   per-egress-pipe dirty-set sharding with mirroring, the address rewriter
//!   used on insert overflow, duplicate-`remove` suppression by sequence
//!   number, and the multicast behaviour used by asynchronous commits and
//!   aggregations.
//! * [`software`] — a software dirty set, used by the dedicated-server
//!   coordinator and owner-server tracking variants that §7.3.3 compares
//!   against.
//!
//! The crate has no dependency on the simulation runtime; the network
//! adapter that plugs [`program::SwitchFsProgram`] into the simulated fabric
//! lives in `switchfs-core`.

pub mod dirty_set;
pub mod program;
pub mod registers;
pub mod software;

pub use dirty_set::{DirtySet, DirtySetConfig, InsertOutcome};
pub use program::{SwitchConfig, SwitchFsProgram, SwitchStats};
pub use registers::RegisterStage;
pub use software::SoftwareDirtySet;
