//! The SwitchFS data-plane program (§6.2, Fig. 8).
//!
//! The program sees every packet crossing the switch. For packets without a
//! dirty-set header it behaves like an ordinary L2 switch. For packets on
//! the reserved dirty-set port it:
//!
//! 1. **parses** the dirty-set operation header;
//! 2. **routes** the packet to the egress pipe owning the fingerprint's
//!    prefix (mirroring it if that pipe differs from the packet's natural
//!    egress pipe — pipes share no state);
//! 3. executes the dirty-set operation against that pipe's registers;
//! 4. writes the `RET` field, applies the **address rewriter** on insert
//!    overflow, suppresses stale duplicate `remove`s by sequence number, and
//!    **multicasts** where the protocol requires it (asynchronous commit
//!    notifications go to both the client and the origin server; aggregation
//!    requests go to every other metadata server).

use std::collections::BTreeMap;

use switchfs_proto::message::{Body, NetMsg, UdpPorts};
use switchfs_proto::{DirtyRet, DirtySetOp, DirtyState};

use crate::dirty_set::{DirtySet, DirtySetConfig, InsertOutcome};

/// Static configuration installed on the switch from the control plane.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Raw node ids of every metadata server (the multicast group used by
    /// aggregation requests).
    pub server_nodes: Vec<u32>,
    /// Dirty-set sizing per egress pipe.
    pub dirty_set: DirtySetConfig,
    /// Number of egress pipes; fingerprints are sharded across pipes by
    /// prefix (§6.2). The paper's Tofino has up to four pipes.
    pub pipes: usize,
    /// Force every insert to fail, reproducing the §7.3.2 overflow study.
    pub force_insert_overflow: bool,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            server_nodes: Vec::new(),
            dirty_set: DirtySetConfig::default(),
            pipes: 2,
            force_insert_overflow: false,
        }
    }
}

/// Counters exposed by the data plane, used by the evaluation and by tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets processed in total.
    pub packets: u64,
    /// Packets without a dirty-set header (plain forwarding).
    pub regular_packets: u64,
    /// Dirty-set queries executed.
    pub queries: u64,
    /// Dirty-set inserts executed (including overflowed ones).
    pub inserts: u64,
    /// Inserts that overflowed and were redirected by the address rewriter.
    pub insert_overflows: u64,
    /// Dirty-set removes executed.
    pub removes: u64,
    /// Stale duplicate removes suppressed by the sequence-number check.
    pub stale_removes: u64,
    /// Packets mirrored to a different egress pipe than their natural one.
    pub mirrored: u64,
    /// Copies emitted by multicast (beyond the first).
    pub multicast_copies: u64,
}

/// The SwitchFS switch program: per-pipe dirty sets plus forwarding logic.
pub struct SwitchFsProgram {
    config: SwitchConfig,
    pipes: Vec<DirtySet>,
    /// Highest `remove` sequence number seen per sending server (§5.4.1).
    remove_seq_high: BTreeMap<u32, u64>,
    stats: SwitchStats,
}

impl SwitchFsProgram {
    /// Creates a program with empty dirty sets.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero pipes.
    pub fn new(config: SwitchConfig) -> Self {
        assert!(config.pipes > 0, "the switch needs at least one pipe");
        let pipes = (0..config.pipes)
            .map(|_| DirtySet::new(config.dirty_set))
            .collect();
        SwitchFsProgram {
            config,
            pipes,
            remove_seq_high: BTreeMap::new(),
            stats: SwitchStats::default(),
        }
    }

    /// The installed configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Control-plane update: registers one more metadata server in the
    /// aggregation multicast group (cluster scale-out).
    pub fn add_server_node(&mut self, node: u32) {
        if !self.config.server_nodes.contains(&node) {
            self.config.server_nodes.push(node);
        }
    }

    /// Control-plane update: removes a metadata server from the aggregation
    /// multicast group (graceful decommission). Aggregation requests stop
    /// fanning out to the retired node the moment the drain completes.
    pub fn remove_server_node(&mut self, node: u32) {
        self.config.server_nodes.retain(|n| *n != node);
    }

    /// Enables or disables forced insert overflow (§7.3.2).
    pub fn set_force_overflow(&mut self, force: bool) {
        self.config.force_insert_overflow = force;
    }

    /// Accumulated counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Total fingerprints currently tracked across all pipes.
    pub fn occupancy(&self) -> usize {
        self.pipes.iter().map(|p| p.occupancy()).sum()
    }

    /// Clears all switch state: dirty sets and duplicate-suppression
    /// sequence numbers. Models a switch reboot (§5.4.2).
    pub fn reboot(&mut self) {
        for p in &mut self.pipes {
            p.clear();
        }
        self.remove_seq_high.clear();
    }

    /// Looks up whether a fingerprint is currently marked scattered (used by
    /// tests and by the recovery orchestration, never by the data path).
    pub fn contains(&self, fp: switchfs_proto::Fingerprint) -> bool {
        self.pipes[self.pipe_of(fp)].query(fp)
    }

    fn pipe_of(&self, fp: switchfs_proto::Fingerprint) -> usize {
        // Shard by fingerprint prefix: the top bits of the index select the
        // owning pipe.
        (fp.prefix(4) as usize) % self.config.pipes
    }

    /// Natural egress pipe of a destination node — only used to count
    /// mirrored packets (pipes are modelled as shared-nothing data, so the
    /// mirror hop itself has no behavioural effect beyond its latency, which
    /// the network model charges as part of switch latency).
    fn natural_pipe(&self, dst: u32) -> usize {
        dst as usize % self.config.pipes
    }

    /// Processes one packet and returns the list of `(destination node,
    /// rewritten message)` pairs to emit. Takes the message by value so the
    /// dominant single-output cases (plain forwarding, query, overflow
    /// redirect) move the payload through the data plane without cloning;
    /// only genuine multicast pays for copies.
    pub fn process(&mut self, src: u32, dst: u32, mut msg: NetMsg) -> Vec<(u32, NetMsg)> {
        self.stats.packets += 1;
        let Some(hdr) = msg.dirty else {
            self.stats.regular_packets += 1;
            return vec![(dst, msg)];
        };
        if msg.dst_port != UdpPorts::DIRTY_SET {
            // Malformed: a dirty header on the plain port is ignored by the
            // parser and the packet is forwarded untouched.
            self.stats.regular_packets += 1;
            return vec![(dst, msg)];
        }
        let fp = hdr.fingerprint;
        let pipe_idx = self.pipe_of(fp);
        if pipe_idx != self.natural_pipe(dst) {
            self.stats.mirrored += 1;
        }
        match hdr.op {
            DirtySetOp::Query => {
                self.stats.queries += 1;
                let present = self.pipes[pipe_idx].query(fp);
                if let Some(h) = &mut msg.dirty {
                    h.ret = DirtyRet::State(if present {
                        DirtyState::Scattered
                    } else {
                        DirtyState::Normal
                    });
                }
                vec![(dst, msg)]
            }
            DirtySetOp::Insert => {
                self.stats.inserts += 1;
                let outcome = if self.config.force_insert_overflow {
                    InsertOutcome::Overflow
                } else {
                    self.pipes[pipe_idx].insert(fp)
                };
                match outcome {
                    InsertOutcome::Inserted => {
                        if let Some(h) = &mut msg.dirty {
                            h.ret = DirtyRet::Inserted;
                        }
                        // Multicast: one copy to the original destination
                        // (the client, completing the operation) and one back
                        // to the origin server (releasing its locks).
                        self.stats.multicast_copies += 1;
                        vec![(dst, msg.clone()), (src, msg)]
                    }
                    InsertOutcome::Overflow => {
                        self.stats.insert_overflows += 1;
                        if let Some(h) = &mut msg.dirty {
                            h.ret = DirtyRet::Overflowed;
                        }
                        // Address rewriter: redirect to the alternative
                        // destination (the parent directory's owner) for
                        // synchronous fallback handling.
                        let fallback_dst = hdr.alt_dst.unwrap_or(dst);
                        vec![(fallback_dst, msg)]
                    }
                }
            }
            DirtySetOp::Remove => {
                let high = self.remove_seq_high.entry(src).or_insert(0);
                if hdr.remove_seq <= *high && *high != 0 {
                    // A duplicate remove that arrives after a newer request
                    // from the same server must not take effect (§5.4.1).
                    self.stats.stale_removes += 1;
                    return Vec::new();
                }
                *high = hdr.remove_seq;
                self.stats.removes += 1;
                self.pipes[pipe_idx].remove(fp);
                if let Some(h) = &mut msg.dirty {
                    h.ret = DirtyRet::Removed;
                }
                // Aggregation requests are multicast to every other metadata
                // server; other remove-carrying packets (none today) would
                // just go to their destination.
                if matches!(msg.body, Body::Server(_)) {
                    let targets: Vec<u32> = self
                        .config
                        .server_nodes
                        .iter()
                        .copied()
                        .filter(|&n| n != src)
                        .collect();
                    let Some((last, rest)) = targets.split_last() else {
                        return vec![(dst, msg)];
                    };
                    self.stats.multicast_copies += rest.len() as u64;
                    let mut out: Vec<(u32, NetMsg)> =
                        rest.iter().map(|&n| (n, msg.clone())).collect();
                    out.push((*last, msg));
                    out
                } else {
                    vec![(dst, msg)]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchfs_proto::message::{Body, PacketSeq};
    use switchfs_proto::{DirId, DirtySetHeader, Fingerprint, ServerId};

    fn fp(i: u64) -> Fingerprint {
        Fingerprint::of_dir(&DirId::generate(ServerId(0), i), "dir")
    }

    fn seq(sender: u32, s: u64) -> PacketSeq {
        PacketSeq { sender, seq: s }
    }

    fn program(servers: Vec<u32>) -> SwitchFsProgram {
        SwitchFsProgram::new(SwitchConfig {
            server_nodes: servers,
            dirty_set: DirtySetConfig::tiny(4, 8),
            pipes: 2,
            force_insert_overflow: false,
        })
    }

    #[test]
    fn regular_packets_pass_through() {
        let mut p = program(vec![10, 11]);
        let msg = NetMsg::plain(seq(1, 1), Body::Empty);
        let out = p.process(1, 10, msg);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 10);
        assert_eq!(p.stats().regular_packets, 1);
    }

    #[test]
    fn query_reports_state_in_ret_field() {
        let mut p = program(vec![10, 11]);
        let f = fp(1);
        let q = NetMsg::with_dirty(seq(1, 1), DirtySetHeader::query(f), Body::Empty);
        let out = p.process(1, 10, q.clone());
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].1.dirty.unwrap().ret,
            DirtyRet::State(DirtyState::Normal)
        );
        // Insert, then query again.
        let ins = NetMsg::with_dirty(seq(10, 2), DirtySetHeader::insert(f, 11), Body::Empty);
        p.process(10, 1, ins);
        let out = p.process(1, 10, q);
        assert_eq!(
            out[0].1.dirty.unwrap().ret,
            DirtyRet::State(DirtyState::Scattered)
        );
    }

    #[test]
    fn successful_insert_multicasts_to_client_and_origin() {
        let mut p = program(vec![10, 11]);
        let ins = NetMsg::with_dirty(seq(10, 1), DirtySetHeader::insert(fp(2), 11), Body::Empty);
        // src = server 10, dst = client 1.
        let out = p.process(10, 1, ins);
        let dests: Vec<u32> = out.iter().map(|(d, _)| *d).collect();
        assert_eq!(dests, vec![1, 10]);
        for (_, m) in &out {
            assert_eq!(m.dirty.unwrap().ret, DirtyRet::Inserted);
        }
        assert!(p.contains(fp(2)));
    }

    #[test]
    fn overflow_redirects_to_alternative_destination() {
        let mut p = program(vec![10, 11]);
        p.set_force_overflow(true);
        let ins = NetMsg::with_dirty(seq(10, 1), DirtySetHeader::insert(fp(3), 42), Body::Empty);
        let out = p.process(10, 1, ins);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].0, 42,
            "address rewriter must use the alternative destination"
        );
        assert_eq!(out[0].1.dirty.unwrap().ret, DirtyRet::Overflowed);
        assert!(!p.contains(fp(3)));
        assert_eq!(p.stats().insert_overflows, 1);
    }

    #[test]
    fn remove_with_server_body_multicasts_to_other_servers() {
        use switchfs_proto::message::{AggregationPayload, ServerMsg};
        let mut p = program(vec![10, 11, 12, 13]);
        let f = fp(4);
        p.process(
            10,
            1,
            NetMsg::with_dirty(seq(10, 1), DirtySetHeader::insert(f, 11), Body::Empty),
        );
        assert!(p.contains(f));
        let agg = Body::Server(ServerMsg::AggregationRequest {
            agg: AggregationPayload {
                fp: f,
                agg_id: 1,
                owner: ServerId(0),
            },
            invalidate: None,
        });
        let rm = NetMsg::with_dirty(seq(11, 1), DirtySetHeader::remove(f, 1), agg);
        let out = p.process(11, 11, rm);
        let mut dests: Vec<u32> = out.iter().map(|(d, _)| *d).collect();
        dests.sort_unstable();
        assert_eq!(
            dests,
            vec![10, 12, 13],
            "multicast must reach every other server"
        );
        assert!(!p.contains(f));
    }

    #[test]
    fn stale_duplicate_removes_are_suppressed() {
        let mut p = program(vec![10, 11]);
        let f = fp(5);
        let rm1 = NetMsg::with_dirty(seq(11, 1), DirtySetHeader::remove(f, 5), Body::Empty);
        let rm_stale = NetMsg::with_dirty(seq(11, 2), DirtySetHeader::remove(f, 4), Body::Empty);
        assert!(!p.process(11, 10, rm1).is_empty());
        // The fingerprint is re-inserted by a later operation...
        p.process(
            10,
            1,
            NetMsg::with_dirty(seq(10, 3), DirtySetHeader::insert(f, 11), Body::Empty),
        );
        assert!(p.contains(f));
        // ...and the stale duplicate remove must not clear it.
        let out = p.process(11, 10, rm_stale);
        assert!(out.is_empty());
        assert!(p.contains(f));
        assert_eq!(p.stats().stale_removes, 1);
    }

    #[test]
    fn remove_seq_is_tracked_per_sender() {
        let mut p = program(vec![10, 11]);
        let f = fp(6);
        // Sender 11 uses seq 5; sender 12's seq 1 must still be accepted.
        p.process(
            11,
            10,
            NetMsg::with_dirty(seq(11, 1), DirtySetHeader::remove(f, 5), Body::Empty),
        );
        p.process(
            10,
            1,
            NetMsg::with_dirty(seq(10, 1), DirtySetHeader::insert(f, 11), Body::Empty),
        );
        let out = p.process(
            12,
            10,
            NetMsg::with_dirty(seq(12, 1), DirtySetHeader::remove(f, 1), Body::Empty),
        );
        assert!(!out.is_empty());
        assert!(!p.contains(f));
    }

    #[test]
    fn reboot_clears_state_and_sequence_numbers() {
        let mut p = program(vec![10, 11]);
        let f = fp(7);
        p.process(
            10,
            1,
            NetMsg::with_dirty(seq(10, 1), DirtySetHeader::insert(f, 11), Body::Empty),
        );
        p.process(
            11,
            10,
            NetMsg::with_dirty(seq(11, 1), DirtySetHeader::remove(fp(8), 9), Body::Empty),
        );
        assert!(p.contains(f));
        p.reboot();
        assert!(!p.contains(f));
        assert_eq!(p.occupancy(), 0);
        // After a reboot, sequence numbering restarts: seq 1 is accepted.
        let out = p.process(
            11,
            10,
            NetMsg::with_dirty(seq(11, 2), DirtySetHeader::remove(fp(8), 1), Body::Empty),
        );
        assert!(!out.is_empty());
    }

    #[test]
    fn mirrored_counter_tracks_cross_pipe_packets() {
        let mut p = program(vec![10, 11]);
        for i in 0..50u64 {
            let q = NetMsg::with_dirty(seq(1, i), DirtySetHeader::query(fp(i)), Body::Empty);
            p.process(1, 10, q);
        }
        let s = p.stats();
        assert_eq!(s.queries, 50);
        assert!(
            s.mirrored > 0,
            "some fingerprints should hash to the non-natural pipe"
        );
        assert!(s.mirrored < 50);
    }
}
