//! The in-network dirty set (§6.3, Fig. 9 and Fig. 10).
//!
//! Fingerprints are stored in a set-associative structure: the switch has
//! `stages` pipeline stages, each holding `2^index_bits` 32-bit registers.
//! Registers at the same index across stages form a *set*; the 17-bit index
//! field of a fingerprint selects the set and the 32-bit tag identifies the
//! fingerprint within it. An `insert` walks the stages in order until a
//! *conditional insert* succeeds, then issues *conditional removes* on the
//! remaining stages so no duplicate tag survives; a `query` succeeds if any
//! stage matches; a `remove` issues conditional removes on every stage.

use switchfs_proto::Fingerprint;

use crate::registers::RegisterStage;

/// Sizing of the dirty set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtySetConfig {
    /// Number of pipeline stages holding registers (the paper's switch uses
    /// ten).
    pub stages: usize,
    /// log2 of the number of registers per stage (the paper allocates
    /// 2^17 = 131,072 registers per stage).
    pub index_bits: u32,
}

impl Default for DirtySetConfig {
    fn default() -> Self {
        DirtySetConfig {
            stages: 10,
            index_bits: Fingerprint::INDEX_BITS,
        }
    }
}

impl DirtySetConfig {
    /// A small configuration used by tests that need to exercise overflow.
    pub fn tiny(stages: usize, index_bits: u32) -> Self {
        DirtySetConfig { stages, index_bits }
    }

    /// Total fingerprint capacity (registers across all stages).
    pub fn capacity(&self) -> usize {
        self.stages * (1usize << self.index_bits)
    }
}

/// Result of a dirty-set insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The fingerprint is now present (newly stored or already there).
    Inserted,
    /// Every stage's register for this set index was occupied by other tags:
    /// the insert fails and the operation must fall back to a synchronous
    /// update (§5.2.1).
    Overflow,
}

/// The set-associative in-network dirty set.
#[derive(Debug, Clone)]
pub struct DirtySet {
    config: DirtySetConfig,
    stages: Vec<RegisterStage>,
    index_mask: u32,
}

impl Default for DirtySet {
    fn default() -> Self {
        DirtySet::new(DirtySetConfig::default())
    }
}

impl DirtySet {
    /// Creates an empty dirty set with the given sizing.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero stages or zero index bits.
    pub fn new(config: DirtySetConfig) -> Self {
        assert!(config.stages > 0, "dirty set needs at least one stage");
        assert!(
            config.index_bits > 0,
            "dirty set needs at least one index bit"
        );
        let per_stage = 1usize << config.index_bits;
        DirtySet {
            config,
            stages: (0..config.stages)
                .map(|_| RegisterStage::new(per_stage))
                .collect(),
            index_mask: (per_stage - 1) as u32,
        }
    }

    /// The sizing of this dirty set.
    pub fn config(&self) -> DirtySetConfig {
        self.config
    }

    fn index_of(&self, fp: Fingerprint) -> usize {
        (fp.index() & self.index_mask) as usize
    }

    /// Inserts a fingerprint (Fig. 10).
    pub fn insert(&mut self, fp: Fingerprint) -> InsertOutcome {
        let index = self.index_of(fp);
        let tag = fp.tag();
        let mut inserted_at = None;
        for (i, stage) in self.stages.iter_mut().enumerate() {
            if stage.conditional_insert(index, tag) {
                inserted_at = Some(i);
                break;
            }
        }
        match inserted_at {
            Some(i) => {
                // The remaining stages perform conditional removes so that no
                // duplicate tag remains in the set.
                for stage in self.stages.iter_mut().skip(i + 1) {
                    stage.conditional_remove(index, tag);
                }
                InsertOutcome::Inserted
            }
            None => InsertOutcome::Overflow,
        }
    }

    /// Queries whether a fingerprint is present.
    pub fn query(&self, fp: Fingerprint) -> bool {
        let index = self.index_of(fp);
        let tag = fp.tag();
        self.stages.iter().any(|s| s.query(index, tag))
    }

    /// Removes a fingerprint from every stage. Idempotent.
    pub fn remove(&mut self, fp: Fingerprint) {
        let index = self.index_of(fp);
        let tag = fp.tag();
        for stage in &mut self.stages {
            stage.conditional_remove(index, tag);
        }
    }

    /// Number of fingerprints currently stored.
    pub fn occupancy(&self) -> usize {
        self.stages.iter().map(|s| s.occupied()).sum()
    }

    /// Total register capacity.
    pub fn capacity(&self) -> usize {
        self.config.capacity()
    }

    /// Clears every register — the state loss of a switch reboot (§5.4.2).
    pub fn clear(&mut self) {
        for stage in &mut self.stages {
            stage.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchfs_proto::DirId;
    use switchfs_proto::ServerId;

    fn fp(i: u64) -> Fingerprint {
        Fingerprint::of_dir(&DirId::generate(ServerId(0), i), "d")
    }

    #[test]
    fn insert_then_query_then_remove() {
        let mut ds = DirtySet::new(DirtySetConfig::tiny(4, 8));
        let f = fp(1);
        assert!(!ds.query(f));
        assert_eq!(ds.insert(f), InsertOutcome::Inserted);
        assert!(ds.query(f));
        assert_eq!(ds.occupancy(), 1);
        ds.remove(f);
        assert!(!ds.query(f));
        assert_eq!(ds.occupancy(), 0);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut ds = DirtySet::new(DirtySetConfig::tiny(4, 8));
        let f = fp(2);
        assert_eq!(ds.insert(f), InsertOutcome::Inserted);
        assert_eq!(ds.insert(f), InsertOutcome::Inserted);
        assert_eq!(
            ds.occupancy(),
            1,
            "duplicate insert must not create a second copy"
        );
    }

    #[test]
    fn remove_is_idempotent() {
        let mut ds = DirtySet::new(DirtySetConfig::tiny(4, 8));
        let f = fp(3);
        ds.insert(f);
        ds.remove(f);
        ds.remove(f);
        assert_eq!(ds.occupancy(), 0);
        assert!(!ds.query(f));
    }

    #[test]
    fn set_associativity_stores_colliding_indexes_across_stages() {
        // One index bit: all fingerprints with the same low index bit share a
        // set; with 3 stages, up to 3 distinct tags fit before overflow.
        let mut ds = DirtySet::new(DirtySetConfig::tiny(3, 1));
        let mut same_set = Vec::new();
        let mut i = 0u64;
        while same_set.len() < 4 {
            let f = fp(i);
            i += 1;
            if f.index() & 1 == 0 && same_set.iter().all(|g: &Fingerprint| g.tag() != f.tag()) {
                same_set.push(f);
            }
        }
        assert_eq!(ds.insert(same_set[0]), InsertOutcome::Inserted);
        assert_eq!(ds.insert(same_set[1]), InsertOutcome::Inserted);
        assert_eq!(ds.insert(same_set[2]), InsertOutcome::Inserted);
        assert_eq!(ds.insert(same_set[3]), InsertOutcome::Overflow);
        // All three stored fingerprints are still queryable.
        for f in &same_set[..3] {
            assert!(ds.query(*f));
        }
        assert!(!ds.query(same_set[3]));
        // Removing one frees a slot for the overflowed fingerprint.
        ds.remove(same_set[0]);
        assert_eq!(ds.insert(same_set[3]), InsertOutcome::Inserted);
    }

    #[test]
    fn duplicate_insert_after_deeper_copy_keeps_single_copy() {
        // Regression for the "conditional remove after successful insert"
        // rule (Fig. 10): if a tag is already present in a later stage and a
        // re-insert lands in an earlier stage, the later copy is removed.
        let mut ds = DirtySet::new(DirtySetConfig::tiny(3, 1));
        // Find two fingerprints with the same index but different tags, and a
        // third equal to the first (same fingerprint re-used).
        let mut same_set = Vec::new();
        let mut i = 0u64;
        while same_set.len() < 2 {
            let f = fp(i);
            i += 1;
            if f.index() & 1 == 1 && same_set.iter().all(|g: &Fingerprint| g.tag() != f.tag()) {
                same_set.push(f);
            }
        }
        let (a, b) = (same_set[0], same_set[1]);
        ds.insert(a); // stage 0
        ds.insert(b); // stage 1
        ds.remove(a); // stage 0 slot now free, b still in stage 1
        ds.insert(b); // lands in stage 0, must remove the stage-1 copy
        assert_eq!(ds.occupancy(), 1);
        assert!(ds.query(b));
        ds.remove(b);
        assert!(!ds.query(b), "a stale duplicate copy survived the remove");
    }

    #[test]
    fn clear_models_switch_reboot() {
        let mut ds = DirtySet::new(DirtySetConfig::tiny(2, 4));
        for i in 0..10 {
            ds.insert(fp(i));
        }
        assert!(ds.occupancy() > 0);
        ds.clear();
        assert_eq!(ds.occupancy(), 0);
        for i in 0..10 {
            assert!(!ds.query(fp(i)));
        }
    }

    #[test]
    fn default_capacity_matches_paper() {
        let ds = DirtySet::default();
        // 10 stages x 2^17 registers = 1,310,720 fingerprints (§6.5).
        assert_eq!(ds.capacity(), 1_310_720);
    }

    #[test]
    fn many_random_fingerprints_fit_well_below_capacity() {
        let mut ds = DirtySet::new(DirtySetConfig::tiny(10, 10));
        // Fill to 25% of capacity; with 10-way associativity overflow should
        // be extremely rare at this load factor.
        let n = ds.capacity() / 4;
        let mut overflows = 0;
        for i in 0..n as u64 {
            if ds.insert(fp(i)) == InsertOutcome::Overflow {
                overflows += 1;
            }
        }
        assert_eq!(overflows, 0, "unexpected overflow at 25% load");
    }
}
