//! Closed-loop workload execution and measurement.
//!
//! The driver reproduces the paper's load generator: clients keep a fixed
//! number of requests in flight (up to 512 in §7.2.1; 32 / 256 in §7.4),
//! every completed operation is timed, and the result is a throughput figure
//! plus per-operation latency percentiles — the raw material of Fig. 12–19.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use switchfs_simnet::sync::Semaphore;
use switchfs_simnet::{LatencyHistogram, SimDuration, SimTime};
use switchfs_workloads::{OpKind, WorkItem};

use crate::cluster::Cluster;

/// Per-operation-kind measurements.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Operations completed.
    pub count: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 90th percentile latency in microseconds.
    pub p90_us: f64,
    /// 99th percentile latency in microseconds.
    pub p99_us: f64,
}

/// The result of running one workload.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Operations completed (including errors).
    pub ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Virtual time the workload took.
    pub elapsed: SimDuration,
    /// Overall throughput in Kops/s.
    pub kops: f64,
    /// Overall latency distribution.
    pub latency: LatencyHistogram,
    /// Per-operation breakdown.
    pub per_op: BTreeMap<&'static str, OpReport>,
}

impl WorkloadReport {
    /// Overall throughput in Mops/s.
    pub fn mops(&self) -> f64 {
        self.kops / 1e3
    }

    /// Mean latency across all operations, in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean().as_micros_f64()
    }

    /// The report of one operation kind, if any of them ran.
    pub fn op(&self, kind: OpKind) -> Option<&OpReport> {
        self.per_op.get(kind.name())
    }
}

#[derive(Default)]
struct Collector {
    start: Option<SimTime>,
    end: SimTime,
    latency: LatencyHistogram,
    per_op: BTreeMap<&'static str, (LatencyHistogram, u64, u64)>,
}

impl Cluster {
    /// Runs `items` with `in_flight` concurrent requests spread round-robin
    /// across the clients. `data_latency` models the data-plane access that
    /// follows `read`/`write` items in the end-to-end workloads (Fig. 19).
    pub fn run_workload(
        &self,
        items: Vec<WorkItem>,
        in_flight: usize,
        data_latency: Option<SimDuration>,
    ) -> WorkloadReport {
        let collector: Rc<RefCell<Collector>> = Rc::new(RefCell::new(Collector::default()));
        let total = items.len();
        let sem = Semaphore::new(in_flight.max(1));
        let handle = self.sim.handle();
        let clients: Vec<_> = self.clients().to_vec();
        let collector_main = collector.clone();

        let master_clients = clients.clone();
        let master_sem = sem.clone();
        let master_handle = handle.clone();
        let driver = async move {
            {
                let mut c = collector_main.borrow_mut();
                let now = master_handle.now();
                c.start = Some(now);
                c.end = now;
            }
            for (i, item) in items.into_iter().enumerate() {
                let permit = master_sem.acquire().await;
                let client = master_clients[i % master_clients.len()].clone();
                let collector = collector_main.clone();
                let h = master_handle.clone();
                master_handle.spawn(async move {
                    let _permit = permit;
                    let t0 = h.now();
                    let (name, ok) = run_item(&client, &item, data_latency, &h).await;
                    let t1 = h.now();
                    let mut c = collector.borrow_mut();
                    let lat = t1.duration_since(t0);
                    c.latency.record(lat);
                    c.end = t1;
                    let entry = c
                        .per_op
                        .entry(name)
                        .or_insert_with(|| (LatencyHistogram::new(), 0, 0));
                    entry.0.record(lat);
                    entry.1 += 1;
                    if !ok {
                        entry.2 += 1;
                    }
                });
            }
            // Wait for every in-flight operation to finish.
            let _all = master_sem.acquire_many(in_flight.max(1)).await;
        };
        let _ = total;
        self.block_on(driver);

        let collector = Rc::try_unwrap(collector)
            .map(|c| c.into_inner())
            .unwrap_or_else(|rc| rc.borrow().clone_into_owned());
        let start = collector.start.unwrap_or(SimTime::ZERO);
        let elapsed = collector.end.duration_since(start);
        let ops = collector.latency.count() as u64;
        let mut per_op = BTreeMap::new();
        let mut errors = 0;
        for (name, (mut hist, count, errs)) in collector.per_op {
            errors += errs;
            per_op.insert(
                name,
                OpReport {
                    count,
                    errors: errs,
                    mean_us: hist.mean().as_micros_f64(),
                    p50_us: hist.percentile(50.0).as_micros_f64(),
                    p90_us: hist.percentile(90.0).as_micros_f64(),
                    p99_us: hist.percentile(99.0).as_micros_f64(),
                },
            );
        }
        let kops = if elapsed.as_secs_f64() > 0.0 {
            ops as f64 / elapsed.as_secs_f64() / 1e3
        } else {
            0.0
        };
        WorkloadReport {
            ops,
            errors,
            elapsed,
            kops,
            latency: collector.latency,
            per_op,
        }
    }
}

impl Collector {
    fn clone_into_owned(&self) -> Collector {
        Collector {
            start: self.start,
            end: self.end,
            latency: self.latency.clone(),
            per_op: self
                .per_op
                .iter()
                .map(|(k, (h, c, e))| (*k, (h.clone(), *c, *e)))
                .collect(),
        }
    }
}

/// Executes one work item on a client; returns the operation name and
/// whether it succeeded.
async fn run_item(
    client: &Rc<switchfs_client::LibFs>,
    item: &WorkItem,
    data_latency: Option<SimDuration>,
    handle: &switchfs_simnet::SimHandle,
) -> (&'static str, bool) {
    let name = item.kind.name();
    let ok = match item.kind {
        OpKind::Create => client.create(&item.path).await.is_ok(),
        OpKind::Delete => client.delete(&item.path).await.is_ok(),
        OpKind::Mkdir => client.mkdir(&item.path).await.is_ok(),
        OpKind::Rmdir => client.rmdir(&item.path).await.is_ok(),
        OpKind::Stat => client.stat(&item.path).await.is_ok(),
        OpKind::Statdir => client.statdir(&item.path).await.is_ok(),
        OpKind::Readdir => client.readdir(&item.path).await.is_ok(),
        OpKind::Open => client.open(&item.path).await.is_ok(),
        OpKind::Close => client.close(&item.path).await.is_ok(),
        OpKind::Chmod => client.chmod(&item.path, 0o700).await.is_ok(),
        OpKind::Rename => {
            let dst = item
                .dst
                .clone()
                .unwrap_or_else(|| format!("{}.renamed", item.path));
            client.rename(&item.path, &dst).await.is_ok()
        }
        OpKind::Read | OpKind::Write => {
            // Data access: open the file (metadata path) then model the data
            // transfer to/from a data node with a fixed latency, as the
            // paper's end-to-end workloads do with small (<256 KB) objects.
            let opened = client.open(&item.path).await.is_ok();
            if let Some(lat) = data_latency {
                handle.sleep(lat).await;
            }
            opened
        }
    };
    (name, ok)
}
