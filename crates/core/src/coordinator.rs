//! The dedicated dirty-set coordinator server (§7.3.3, alternative (a)).
//!
//! Instead of tracking scattered directories in the switch, a standard
//! server answers dirty-set RPCs. Every operation involving the dirty set
//! pays one extra round trip, and the coordinator's CPU bounds the total
//! dirty-set operation rate — the two effects Fig. 15 quantifies.

use std::cell::RefCell;
use std::rc::Rc;

use switchfs_proto::message::{Body, CoordMsg, NetMsg, PacketSeq};
use switchfs_simnet::{CpuPool, Endpoint, SimDuration, SimHandle};
use switchfs_switch::SoftwareDirtySet;

/// Statistics of the coordinator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordinatorStats {
    /// Dirty-set requests served.
    pub requests: u64,
}

/// The dedicated coordinator node.
pub struct Coordinator {
    handle: SimHandle,
    cpu: CpuPool,
    endpoint: Rc<Endpoint<NetMsg>>,
    set: Rc<RefCell<SoftwareDirtySet>>,
    stats: Rc<RefCell<CoordinatorStats>>,
    per_op_cost: SimDuration,
    next_seq: RefCell<u64>,
}

impl Coordinator {
    /// Creates a coordinator with `cores` worker cores (the paper's
    /// dedicated server uses 12 cores with DPDK).
    pub fn new(handle: SimHandle, endpoint: Endpoint<NetMsg>, cores: usize) -> Self {
        let cpu = CpuPool::new(handle.clone(), cores);
        Coordinator {
            handle,
            cpu,
            endpoint: Rc::new(endpoint),
            set: Rc::new(RefCell::new(SoftwareDirtySet::new())),
            stats: Rc::new(RefCell::new(CoordinatorStats::default())),
            // ~1 µs of CPU per dirty-set RPC: 12 cores saturate at ~12 Mops/s,
            // matching the ~11 Mops/s ceiling reported in Fig. 15(b).
            per_op_cost: SimDuration::from_micros_f64(1.0),
            next_seq: RefCell::new(1),
        }
    }

    /// Requests served so far.
    pub fn stats(&self) -> CoordinatorStats {
        *self.stats.borrow()
    }

    /// Spawns the serving loop.
    pub fn start(self: &Rc<Self>) {
        let me = self.clone();
        self.handle.spawn(async move {
            loop {
                let Some(pkt) = me.endpoint.recv().await else {
                    return;
                };
                let Body::Coord(CoordMsg::Request { token, op, fp, .. }) = pkt.payload.body else {
                    continue;
                };
                let me2 = me.clone();
                me.handle.spawn(async move {
                    me2.cpu.run(me2.per_op_cost).await;
                    let ret = me2.set.borrow_mut().apply(op, fp);
                    me2.stats.borrow_mut().requests += 1;
                    let seq = {
                        let mut s = me2.next_seq.borrow_mut();
                        *s += 1;
                        *s
                    };
                    me2.endpoint.send(
                        pkt.src,
                        NetMsg::plain(
                            PacketSeq {
                                sender: me2.endpoint.node().0,
                                seq,
                            },
                            Body::Coord(CoordMsg::Reply { token, ret }),
                        ),
                    );
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchfs_proto::{DirId, DirtyRet, DirtySetOp, DirtyState, Fingerprint};
    use switchfs_simnet::net::LinkParams;
    use switchfs_simnet::{NetFaults, Network, NodeId, Sim, SimTime};

    #[test]
    fn coordinator_answers_dirty_set_rpcs() {
        let sim = Sim::new(1);
        let net: Network<NetMsg> = Network::new(
            sim.handle(),
            LinkParams::default(),
            NetFaults::reliable(),
            1,
        );
        let coord_ep = net.register(NodeId(900));
        let client_ep = net.register(NodeId(1));
        let coordinator = Rc::new(Coordinator::new(sim.handle(), coord_ep, 12));
        coordinator.start();
        let fp = Fingerprint::of_dir(&DirId::ROOT, "d");
        let got = Rc::new(RefCell::new(Vec::new()));
        let got2 = got.clone();
        sim.spawn(async move {
            let seq = |s| PacketSeq { sender: 1, seq: s };
            for (i, op) in [DirtySetOp::Query, DirtySetOp::Insert, DirtySetOp::Query]
                .into_iter()
                .enumerate()
            {
                client_ep.send(
                    NodeId(900),
                    NetMsg::plain(
                        seq(i as u64),
                        Body::Coord(CoordMsg::Request {
                            token: i as u64,
                            op,
                            fp,
                            seq: 0,
                        }),
                    ),
                );
                let reply = client_ep.recv().await.unwrap();
                if let Body::Coord(CoordMsg::Reply { ret, .. }) = reply.payload.body {
                    got2.borrow_mut().push(ret);
                }
            }
        });
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(
            *got.borrow(),
            vec![
                DirtyRet::State(DirtyState::Normal),
                DirtyRet::Inserted,
                DirtyRet::State(DirtyState::Scattered)
            ]
        );
        assert_eq!(coordinator.stats().requests, 3);
    }
}
