//! Building and controlling a simulated deployment.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use switchfs_client::{LibFs, LibFsConfig};
use switchfs_obs::{MetricsRegistry, Obs, ObsHandle};
use switchfs_proto::message::NetMsg;
use switchfs_proto::{
    ClientId, DirEntry, DirId, FileType, Fingerprint, MetaKey, PartitionPolicy, ServerId,
    SharedPlacement,
};
use switchfs_server::server::recovery::RecoveryReport;
use switchfs_server::{DurableState, Server, ServerConfig, TrackingMode};
use switchfs_simnet::{Network, NodeId, Sim, SimDuration, SimTime};
use switchfs_switch::{DirtySetConfig, SwitchConfig, SwitchFsProgram, SwitchStats};

use crate::config::{ClusterConfig, TrackingChoice};
use crate::coordinator::Coordinator;
use crate::switch_adapter::SwitchAdapter;

/// Node-id layout of a deployment.
pub(crate) fn server_node(i: usize) -> NodeId {
    NodeId(i as u32)
}
pub(crate) fn client_node(i: usize) -> NodeId {
    NodeId(1000 + i as u32)
}
const COORDINATOR_NODE: NodeId = NodeId(900);

/// A fully built simulated deployment: servers, clients, switch, network.
pub struct Cluster {
    /// The simulation everything runs on.
    pub sim: Sim,
    cfg: ClusterConfig,
    network: Network<NetMsg>,
    servers: Vec<Server>,
    durables: Vec<Rc<RefCell<DurableState>>>,
    clients: Vec<Rc<LibFs>>,
    switch: Option<Rc<RefCell<SwitchFsProgram>>>,
    coordinator: Option<Rc<Coordinator>>,
    placement: SharedPlacement,
    server_nodes: Rc<RefCell<Vec<NodeId>>>,
    tracking_mode: TrackingMode,
    /// Shared observability sink: one flight recorder covering every server
    /// and client of the deployment.
    obs: ObsHandle,
    /// Directories installed by preloading: path → (key, id).
    pub preloaded_dirs: BTreeMap<String, (MetaKey, DirId)>,
    preload_counter: u64,
}

impl Cluster {
    /// Builds a deployment from a configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        let sim = Sim::new(cfg.seed);
        let handle = sim.handle();
        let network: Network<NetMsg> = Network::new(
            handle.clone(),
            cfg.link_params,
            cfg.net_faults,
            cfg.seed ^ 0xbeef,
        );

        let obs = match cfg.trace_capacity {
            Some(capacity) => Obs::recording(capacity),
            None => Obs::disabled(),
        };
        let placement = SharedPlacement::initial(cfg.system.partition_policy(), cfg.servers);
        let server_nodes: Rc<RefCell<Vec<NodeId>>> =
            Rc::new(RefCell::new((0..cfg.servers).map(server_node).collect()));

        // Programmable switch (only SwitchFS with in-network tracking).
        let mut switch = None;
        if cfg.system.uses_switch() && cfg.tracking == TrackingChoice::InNetwork {
            let program = Rc::new(RefCell::new(SwitchFsProgram::new(SwitchConfig {
                server_nodes: (0..cfg.servers).map(|i| server_node(i).0).collect(),
                dirty_set: DirtySetConfig::default(),
                pipes: 2,
                force_insert_overflow: cfg.force_dirty_overflow,
            })));
            network.install_switch(
                switchfs_simnet::SwitchId(0),
                Box::new(SwitchAdapter::new(program.clone())),
            );
            switch = Some(program);
        }
        if let Some((racks, spines)) = cfg.leaf_spine {
            let mut node_rack = switchfs_simnet::FxHashMap::default();
            for i in 0..cfg.servers {
                node_rack.insert(server_node(i), i as u32 % racks);
            }
            for i in 0..cfg.clients {
                node_rack.insert(client_node(i), racks.saturating_sub(1));
            }
            node_rack.insert(COORDINATOR_NODE, 0);
            network.set_topology(switchfs_simnet::Topology::LeafSpine {
                node_rack,
                spine_count: spines,
            });
            // Dirty-set traffic is range-partitioned across spines by
            // fingerprint prefix (§6.4).
            network.set_spine_selector(Rc::new(|msg: &NetMsg, spines: u32| {
                msg.dirty
                    .map(|h| h.fingerprint.prefix(8) % spines.max(1))
                    .unwrap_or(0)
            }));
            if let Some(program) = &switch {
                for s in 0..spines {
                    network.install_switch(
                        switchfs_simnet::SwitchId(s),
                        Box::new(SwitchAdapter::new(program.clone())),
                    );
                }
            }
        }

        // Dedicated coordinator, if requested.
        let mut coordinator = None;
        if cfg.tracking == TrackingChoice::DedicatedServer {
            let ep = network.register(COORDINATOR_NODE);
            let c = Rc::new(Coordinator::new(handle.clone(), ep, 12));
            c.start();
            coordinator = Some(c);
        }

        let tracking_mode = match cfg.tracking {
            TrackingChoice::InNetwork => TrackingMode::InNetwork,
            TrackingChoice::DedicatedServer => TrackingMode::DedicatedServer(COORDINATOR_NODE),
            TrackingChoice::OwnerServer => TrackingMode::OwnerServer,
        };

        // Metadata servers.
        let mut servers = Vec::with_capacity(cfg.servers);
        let mut durables = Vec::with_capacity(cfg.servers);
        for i in 0..cfg.servers {
            let endpoint = network.register(server_node(i));
            let durable = Rc::new(RefCell::new(DurableState::new()));
            let server = Server::new(
                handle.clone(),
                endpoint,
                ServerConfig {
                    id: ServerId(i as u32),
                    node: server_node(i),
                    cores: cfg.cores_per_server,
                    costs: cfg.cost_model(),
                    update_mode: cfg.update_mode(),
                    tracking: tracking_mode,
                    proactive: cfg.proactive,
                    placement: placement.clone(),
                    server_nodes: server_nodes.clone(),
                    obs: obs.clone(),
                },
                durable.clone(),
            );
            server.start();
            servers.push(server);
            durables.push(durable);
        }

        // Clients. Each gets a *private* shard-map snapshot: after a live
        // migration flips shards in the shared map, a client keeps routing
        // with its stale copy until a `WrongOwner` rejection refreshes it.
        let mut clients = Vec::with_capacity(cfg.clients);
        for i in 0..cfg.clients {
            let router = cfg.system.make_router(
                placement.snapshot(),
                cfg.tracking == TrackingChoice::InNetwork,
            );
            let endpoint = network.register(client_node(i));
            let mut lib_cfg = LibFsConfig::new(ClientId(i as u32));
            lib_cfg.request_timeout = cfg.effective_client_timeout();
            let client = LibFs::new(
                handle.clone(),
                endpoint,
                router,
                server_nodes.clone(),
                lib_cfg,
                obs.clone(),
            );
            client.start();
            clients.push(client);
        }

        let mut cluster = Cluster {
            sim,
            cfg,
            network,
            servers,
            durables,
            clients,
            switch,
            coordinator,
            placement,
            server_nodes,
            tracking_mode,
            obs,
            preloaded_dirs: BTreeMap::new(),
            preload_counter: 0,
        };
        cluster.preload_root();
        cluster
    }

    /// The configuration the deployment was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The metadata servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Client `i`.
    pub fn client(&self, i: usize) -> Rc<LibFs> {
        self.clients[i % self.clients.len()].clone()
    }

    /// All clients.
    pub fn clients(&self) -> &[Rc<LibFs>] {
        &self.clients
    }

    /// The crash-surviving durable state (WAL + checkpoint) of server `i`.
    pub fn durable_state(&self, i: usize) -> Rc<RefCell<DurableState>> {
        self.durables[i].clone()
    }

    /// The simulated network fabric (cheap clone of the shared handle); the
    /// chaos nemesis uses it to partition links and tune loss/duplication.
    pub fn network(&self) -> Network<NetMsg> {
        self.network.clone()
    }

    /// The cluster's epoch-versioned shard map, shared with every server;
    /// lets tests and the chaos harness reason about which server owns a
    /// key (clients hold private snapshots refreshed via `WrongOwner`).
    pub fn placement(&self) -> SharedPlacement {
        self.placement.clone()
    }

    /// The network node hosting metadata server `i`.
    pub fn server_node_id(&self, i: usize) -> NodeId {
        server_node(i)
    }

    /// The network node hosting client `i`.
    pub fn client_node_id(&self, i: usize) -> NodeId {
        client_node(i)
    }

    /// Counters of the programmable switch, if one is deployed.
    pub fn switch_stats(&self) -> Option<SwitchStats> {
        self.switch.as_ref().map(|s| s.borrow().stats())
    }

    /// The programmable switch program itself, if one is deployed (the chaos
    /// nemesis reboots it from inside the simulation).
    pub fn switch_program(&self) -> Option<Rc<RefCell<SwitchFsProgram>>> {
        self.switch.clone()
    }

    /// Number of fingerprints currently tracked by the switch.
    pub fn switch_occupancy(&self) -> Option<usize> {
        self.switch.as_ref().map(|s| s.borrow().occupancy())
    }

    /// Requests served by the dedicated coordinator, if one is deployed.
    pub fn coordinator_requests(&self) -> u64 {
        self.coordinator
            .as_ref()
            .map(|c| c.stats().requests)
            .unwrap_or(0)
    }

    /// Forces (or stops forcing) dirty-set insert overflow (§7.3.2).
    pub fn set_force_dirty_overflow(&self, force: bool) {
        if let Some(s) = &self.switch {
            s.borrow_mut().set_force_overflow(force);
        }
    }

    // ------------------------------------------------------------------
    // Running work on the simulation.
    // ------------------------------------------------------------------

    /// Runs an async closure against the deployment and returns its value.
    ///
    /// Background loops are stopped once the closure finishes so that the
    /// simulation quiesces, then restarted so a later `block_on` still has
    /// proactive aggregation available.
    pub fn block_on<T: 'static, F>(&self, fut: F) -> T
    where
        F: std::future::Future<Output = T> + 'static,
    {
        let out: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let out2 = out.clone();
        let servers = self.servers.clone();
        self.sim.spawn(async move {
            let value = fut.await;
            *out2.borrow_mut() = Some(value);
            for s in &servers {
                s.stop_background();
            }
        });
        self.sim.run();
        for s in &self.servers {
            s.restart_background();
        }
        let value = out.borrow_mut().take();
        value.expect("block_on future did not complete; the simulation deadlocked")
    }

    /// Runs the simulation until `deadline` without injecting new work.
    pub fn run_until(&self, deadline: SimTime) {
        self.sim.run_until(deadline);
    }

    /// Lets the deployment settle for `dur` of virtual time (e.g. to let
    /// proactive aggregation drain change-logs).
    pub fn settle(&self, dur: SimDuration) {
        let deadline = self.sim.now() + dur;
        self.sim.run_until(deadline);
    }

    // ------------------------------------------------------------------
    // Namespace preloading (experiment setup).
    // ------------------------------------------------------------------

    fn preload_root(&mut self) {
        let root_key = MetaKey::new(DirId::ROOT, "");
        let fp = Fingerprint::of_dir(&root_key.pid, &root_key.name);
        let by_fp = self.placement.dir_owner_by_fp(fp);
        let by_id = self.placement.dir_owner_by_id(&DirId::ROOT);
        for owner in [by_fp, by_id] {
            self.servers[owner.0 as usize].preload_dir(root_key.clone(), DirId::ROOT, 0);
        }
        self.preloaded_dirs
            .insert("/".to_string(), (root_key, DirId::ROOT));
    }

    /// Installs a directory directly (without running the protocol), placing
    /// its replicas according to the deployment's partitioning policy.
    /// Returns the directory's id.
    pub fn preload_dir(&mut self, path: &str) -> DirId {
        if let Some((_, id)) = self.preloaded_dirs.get(path) {
            return *id;
        }
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        assert!(!comps.is_empty(), "cannot preload the root directory");
        let parent_path = if comps.len() == 1 {
            "/".to_string()
        } else {
            format!("/{}", comps[..comps.len() - 1].join("/"))
        };
        let parent_id = match self.preloaded_dirs.get(&parent_path) {
            Some((_, id)) => *id,
            None => self.preload_dir(&parent_path),
        };
        let name = comps[comps.len() - 1];
        let key = MetaKey::new(parent_id, name);
        self.preload_counter += 1;
        let id = DirId::generate(ServerId(u32::MAX), self.preload_counter);
        let fp = Fingerprint::of_dir(&key.pid, &key.name);

        match self.cfg.system.partition_policy() {
            PartitionPolicy::PerFileHash => {
                let owner = self.placement.dir_owner_by_fp(fp);
                self.servers[owner.0 as usize].preload_dir(key.clone(), id, 0);
            }
            PartitionPolicy::PerDirectoryHash | PartitionPolicy::Subtree => {
                // Access replica with the parent's children; content replica
                // with the directory's own children.
                let access = self.placement.file_owner(&key);
                let content = self.placement.dir_owner_by_id(&id);
                self.servers[access.0 as usize].preload_dir(key.clone(), id, 0);
                if content != access {
                    self.servers[content.0 as usize].preload_dir(key.clone(), id, 0);
                }
            }
        }
        self.preloaded_dirs.insert(path.to_string(), (key, id));
        id
    }

    /// Installs `count` files named `f0..f{count-1}` in an already preloaded
    /// directory, updating the directory's entry list and size.
    pub fn preload_files(&mut self, dir_path: &str, prefix: &str, count: usize) {
        let (dir_key, dir_id) = self
            .preloaded_dirs
            .get(dir_path)
            .cloned()
            .unwrap_or_else(|| panic!("directory {dir_path} was not preloaded"));
        let fp = Fingerprint::of_dir(&dir_key.pid, &dir_key.name);
        let content_owner = match self.cfg.system.partition_policy() {
            PartitionPolicy::PerFileHash => self.placement.dir_owner_by_fp(fp),
            _ => self.placement.dir_owner_by_id(&dir_id),
        };
        for i in 0..count {
            let key = MetaKey::new(dir_id, format!("{prefix}{i}"));
            let owner = self.placement.file_owner(&key);
            self.servers[owner.0 as usize].preload_file(key.clone(), 0);
            self.servers[content_owner.0 as usize].preload_entry(
                dir_id,
                DirEntry {
                    name: key.name.clone(),
                    file_type: FileType::File,
                    mode: 0o644,
                },
            );
        }
        self.servers[content_owner.0 as usize].preload_dir_size(&dir_key, count as u64);
    }

    /// Checkpoints every server's volatile state into its durable bundle.
    /// Call after preloading a namespace that must survive injected crashes:
    /// preloads bypass the protocol (and therefore the WAL), so without a
    /// checkpoint a recovery rebuilds a world without them.
    pub fn checkpoint_all(&self) {
        for s in &self.servers {
            s.checkpoint();
        }
    }

    // ------------------------------------------------------------------
    // Elastic membership: server addition and live shard rebalancing.
    // ------------------------------------------------------------------

    /// Registers one more metadata server: a new node joins the network,
    /// the shared membership list and the switch's multicast group, and
    /// starts serving — but owns no shards until [`Cluster::rebalance`]
    /// migrates a fair share to it. Returns the new server's index.
    pub fn add_server(&mut self) -> usize {
        let i = self.servers.len();
        let node = server_node(i);
        let endpoint = self.network.register(node);
        let durable = Rc::new(RefCell::new(DurableState::new()));
        let new_id = self.placement.add_server();
        debug_assert_eq!(new_id, ServerId(i as u32));
        self.server_nodes.borrow_mut().push(node);
        if let Some(program) = &self.switch {
            program.borrow_mut().add_server_node(node.0);
        }
        let server = Server::new(
            self.sim.handle(),
            endpoint,
            ServerConfig {
                id: new_id,
                node,
                cores: self.cfg.cores_per_server,
                costs: self.cfg.cost_model(),
                update_mode: self.cfg.update_mode(),
                tracking: self.tracking_mode,
                proactive: self.cfg.proactive,
                placement: self.placement.clone(),
                server_nodes: self.server_nodes.clone(),
                obs: self.obs.clone(),
            },
            durable.clone(),
        );
        // Setup-time state seeding (like preloading): the newcomer needs the
        // cluster's invalidation list before it serves stale-cache checks.
        server.seed_invalidation_from(&self.servers[0]);
        server.start();
        self.servers.push(server);
        self.durables.push(durable);
        i
    }

    /// Live-migrates shards until ownership is balanced across the current
    /// membership (after [`Cluster::add_server`], ~1/N of all shards move to
    /// the newcomer). Runs on the simulation; client traffic keeps flowing
    /// and refreshes its maps via `WrongOwner`. Returns the number of shards
    /// migrated.
    pub fn rebalance(&self) -> usize {
        let placement = self.placement.clone();
        let servers = self.servers.clone();
        self.block_on(async move { run_rebalance(&placement, &servers).await })
    }

    /// Gracefully decommissions metadata server `idx`: every shard it owns
    /// migrates to the survivors (fair share, one bucketing scan over the
    /// victim's stores), its remaining change-logs flush to their owners,
    /// the shared map retires the id with an epoch bump, the switch drops
    /// the node from the aggregation multicast group, and the server turns
    /// into a redirect tombstone answering stale-routed client requests
    /// with `WrongOwner` — the cluster keeps serving throughout. A crash
    /// mid-decommission resolves from the WAL `MigrationMarker`s on
    /// recovery; re-run `remove_server` afterwards to finish the drain.
    pub fn remove_server(&mut self, idx: usize) -> DecommissionReport {
        assert!(idx < self.servers.len(), "no server {idx}");
        let placement = self.placement.clone();
        let servers = self.servers.clone();
        let report =
            self.block_on(async move { run_decommission(&placement, &servers, idx).await });
        if report.completed {
            self.finalize_decommission(idx);
        }
        report
    }

    /// The control-plane tail of a decommission whose drain already ran
    /// (e.g. concurrently with a workload via [`run_decommission`]): removes
    /// the node from the switch multicast group and turns the server into
    /// the redirect tombstone.
    pub fn finalize_decommission(&self, idx: usize) {
        assert!(
            self.placement.is_retired(ServerId(idx as u32)),
            "server {idx} was not drained and retired"
        );
        if let Some(program) = &self.switch {
            program.borrow_mut().remove_server_node(server_node(idx).0);
        }
        self.servers[idx].decommission();
    }

    // ------------------------------------------------------------------
    // Fault orchestration (§5.4, §7.7).
    // ------------------------------------------------------------------

    /// Crashes metadata server `i`: its volatile state is lost and its
    /// traffic is dropped until recovery.
    pub fn crash_server(&self, i: usize) {
        self.servers[i].crash();
        self.network.set_node_down(server_node(i), true);
    }

    /// Crashes metadata server `i` with a torn disk write: the WAL's flushed
    /// prefix survives bit-exactly, while each unflushed record is kept,
    /// torn or dropped under `tear_seed`. Returns what the crash did to the
    /// tail (see `switchfs_kvstore::Wal::crash_apply`).
    pub fn crash_server_torn(&self, i: usize, tear_seed: u64) -> switchfs_kvstore::TornTail {
        let tail = self.servers[i].crash_torn(tear_seed);
        self.network.set_node_down(server_node(i), true);
        tail
    }

    /// Recovers metadata server `i` and returns the recovery report.
    pub fn recover_server(&self, i: usize) -> RecoveryReport {
        let server = self.mark_server_up(i);
        self.block_on(async move { server.recover().await })
    }

    /// Brings server `i`'s network node back up and returns the server so an
    /// already-running async task (the chaos nemesis) can drive
    /// `Server::recover` itself instead of re-entering the simulation via
    /// [`Cluster::block_on`].
    pub fn mark_server_up(&self, i: usize) -> Server {
        self.network.set_node_down(server_node(i), false);
        self.servers[i].clone()
    }

    /// Clears all in-network state (a switch reboot) without running the
    /// recovery protocol; the caller is responsible for re-aggregating every
    /// owned directory (see [`Cluster::crash_and_recover_switch`] for the
    /// blocking variant).
    pub fn reboot_switch(&self) {
        if let Some(s) = &self.switch {
            s.borrow_mut().reboot();
        }
    }

    /// Reboots the programmable switch: all in-network state is lost, every
    /// server aggregates the directories it owns, and the deployment returns
    /// to a consistent state (§5.4.2). Returns the virtual time the recovery
    /// took.
    pub fn crash_and_recover_switch(&self) -> SimDuration {
        self.reboot_switch();
        let servers = self.servers.clone();
        let start = self.sim.now();
        self.block_on(async move {
            for s in &servers {
                s.set_unavailable();
            }
            for s in &servers {
                s.aggregate_all_owned().await;
            }
            for s in &servers {
                s.set_available(true);
            }
        });
        self.sim.now().duration_since(start)
    }

    /// The deployment's shared observability handle (flight recorder +
    /// enable switch). Disabled unless `trace_capacity` was configured.
    pub fn obs(&self) -> ObsHandle {
        self.obs.clone()
    }

    /// Registers every subsystem's counters into one typed metrics registry
    /// with stable (sorted) names: server protocol counters, client-side
    /// counters, KV-store and WAL accounting, switch counters and network
    /// fabric counters. Purely a read-side bridge — building a snapshot
    /// mutates nothing.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let s = self.total_server_stats();
        reg.counter("server.ops_completed", s.ops_completed)
            .counter("server.ops_failed", s.ops_failed)
            .counter("server.aggregations", s.aggregations)
            .counter("server.entries_applied", s.entries_applied)
            .counter("server.entries_compacted_away", s.entries_compacted_away)
            .counter("server.pushes_sent", s.pushes_sent)
            .counter("server.pushes_received", s.pushes_received)
            .counter("server.fallback_syncs", s.fallback_syncs)
            .counter("server.remote_updates", s.remote_updates)
            .counter("server.retransmissions", s.retransmissions)
            .counter("server.recoveries", s.recoveries)
            .counter("server.shards_migrated_out", s.shards_migrated_out)
            .counter("server.shards_migrated_in", s.shards_migrated_in)
            .counter("server.wrong_owner_rejects", s.wrong_owner_rejects);

        let mut c = switchfs_client::ClientStats::default();
        for client in &self.clients {
            let st = client.stats();
            c.ops_issued += st.ops_issued;
            c.ops_ok += st.ops_ok;
            c.ops_err += st.ops_err;
            c.retransmissions += st.retransmissions;
            c.stale_retries += st.stale_retries;
            c.lookups += st.lookups;
            c.map_refreshes += st.map_refreshes;
        }
        reg.counter("client.ops_issued", c.ops_issued)
            .counter("client.ops_ok", c.ops_ok)
            .counter("client.ops_err", c.ops_err)
            .counter("client.retransmissions", c.retransmissions)
            .counter("client.stale_retries", c.stale_retries)
            .counter("client.lookups", c.lookups)
            .counter("client.map_refreshes", c.map_refreshes);

        let mut kv = switchfs_kvstore::KvStats::default();
        let (mut wal_appends, mut wal_bytes, mut wal_flushed_bytes) = (0u64, 0u64, 0u64);
        for (server, durable) in self.servers.iter().zip(&self.durables) {
            let st = server.kv_stats();
            kv.gets += st.gets;
            kv.puts += st.puts;
            kv.deletes += st.deletes;
            kv.scans += st.scans;
            let d = durable.borrow();
            wal_appends += d.wal.appends();
            wal_bytes += d.wal.bytes();
            wal_flushed_bytes += d.wal.flushed_bytes();
        }
        reg.counter("kv.gets", kv.gets)
            .counter("kv.puts", kv.puts)
            .counter("kv.deletes", kv.deletes)
            .counter("kv.scans", kv.scans)
            .counter("wal.appends", wal_appends)
            .counter("wal.bytes_appended", wal_bytes)
            .counter("wal.bytes_flushed", wal_flushed_bytes);

        if let Some(sw) = self.switch_stats() {
            reg.counter("switch.packets", sw.packets)
                .counter("switch.regular_packets", sw.regular_packets)
                .counter("switch.queries", sw.queries)
                .counter("switch.inserts", sw.inserts)
                .counter("switch.insert_overflows", sw.insert_overflows)
                .counter("switch.removes", sw.removes)
                .counter("switch.stale_removes", sw.stale_removes)
                .counter("switch.mirrored", sw.mirrored)
                .counter("switch.multicast_copies", sw.multicast_copies);
        }

        let net = self.network.stats();
        reg.counter("net.sent", net.sent)
            .counter("net.delivered", net.delivered)
            .counter("net.dropped_faults", net.dropped_faults)
            .counter("net.duplicated", net.duplicated)
            .counter("net.dropped_node_down", net.dropped_node_down)
            .counter("net.dropped_by_switch", net.dropped_by_switch)
            .counter("net.dropped_partition", net.dropped_partition);

        reg.counter("obs.events_recorded", self.obs.recorder().len() as u64)
            .counter("obs.events_evicted", self.obs.recorder().evicted());
        reg
    }

    /// Aggregate counters across all servers.
    pub fn total_server_stats(&self) -> switchfs_server::ServerStats {
        let mut total = switchfs_server::ServerStats::default();
        for s in &self.servers {
            let st = s.stats();
            total.ops_completed += st.ops_completed;
            total.ops_failed += st.ops_failed;
            total.aggregations += st.aggregations;
            total.entries_applied += st.entries_applied;
            total.entries_compacted_away += st.entries_compacted_away;
            total.pushes_sent += st.pushes_sent;
            total.pushes_received += st.pushes_received;
            total.fallback_syncs += st.fallback_syncs;
            total.remote_updates += st.remote_updates;
            total.retransmissions += st.retransmissions;
            total.recoveries += st.recoveries;
            total.shards_migrated_out += st.shards_migrated_out;
            total.shards_migrated_in += st.shards_migrated_in;
            total.wrong_owner_rejects += st.wrong_owner_rejects;
        }
        total
    }
}

/// Drives a full rebalance against a live deployment: plans the moves from
/// the shared map, then migrates each shard (freeze → stream → flip) from
/// its owner, skipping servers that are currently down. Usable both from
/// [`Cluster::rebalance`] and from inside an already-running simulation
/// (the chaos nemesis' membership-change fault). Returns the number of
/// shards successfully migrated.
pub async fn run_rebalance(placement: &SharedPlacement, servers: &[Server]) -> usize {
    let mut moved = 0;
    // Two passes: a shard whose transfer failed (e.g. the target crashed
    // mid-stream) is retried once after the rest of the plan completed.
    for _pass in 0..2 {
        let plan = placement.plan_rebalance();
        if plan.is_empty() {
            break;
        }
        for (shard, from, to) in plan {
            let source = &servers[from.0 as usize];
            if source.is_crashed() || servers[to.0 as usize].is_crashed() {
                continue;
            }
            let placement = placement.clone();
            if source
                .migrate_shard(shard, to, move || placement.assign(shard, to))
                .await
            {
                moved += 1;
            }
        }
    }
    moved
}

/// What a decommission drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecommissionReport {
    /// Shards migrated off the victim.
    pub shards_moved: usize,
    /// True when the victim is fully drained (no shards, change-logs
    /// flushed, nothing in flight) and retired in the shared map. False
    /// leaves the cluster in a consistent partially-drained state — re-run
    /// the decommission once the obstruction (a crashed target, a fault
    /// window) clears.
    pub completed: bool,
}

/// Drives the drain phase of a graceful decommission against a live
/// deployment: plans the fair-share moves off `victim`, migrates them in one
/// batch per pass (a single bucketing scan of the victim's stores instead of
/// one per shard), force-flushes the victim's remaining change-logs to their
/// owners, and — once nothing recovery-critical remains on the victim —
/// retires its id in the shared map with an epoch bump. Usable both from
/// [`Cluster::remove_server`] and from inside an already-running simulation
/// (the chaos nemesis' decommission fault, the bench decommission figure).
pub async fn run_decommission(
    placement: &SharedPlacement,
    servers: &[Server],
    victim: usize,
) -> DecommissionReport {
    let victim_id = ServerId(victim as u32);
    let source = &servers[victim];
    let mut moved = 0;
    // Two passes, like the rebalance: a shard whose transfer failed (target
    // crashed, loss window ate the retry budget) is retried once after the
    // rest of the plan completed.
    for _pass in 0..2 {
        if source.is_crashed() {
            break;
        }
        let moves: Vec<(u32, ServerId)> = placement
            .plan_drain(victim_id)
            .into_iter()
            .filter(|(_, _, to)| !servers[to.0 as usize].is_crashed())
            .map(|(shard, _, to)| (shard, to))
            .collect();
        if moves.is_empty() {
            break;
        }
        let p = placement.clone();
        moved += source
            .migrate_shards(&moves, |shard, to| p.assign(shard, to))
            .await;
    }
    let drained = !source.is_crashed() && placement.shards_owned(victim_id) == 0;
    let completed = drained && source.drain_for_shutdown().await;
    if completed {
        placement.retire(victim_id);
    }
    DecommissionReport {
        shards_moved: moved,
        completed,
    }
}
