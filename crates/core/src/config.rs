//! Cluster-level configuration.

use switchfs_baselines::SystemKind;
use switchfs_server::{CostModel, ProactiveConfig, UpdateMode};
use switchfs_simnet::net::LinkParams;
use switchfs_simnet::{NetFaults, SimDuration};

/// Where directory dirty state is tracked (the §7.3.3 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackingChoice {
    /// In the programmable switch (SwitchFS's design).
    InNetwork,
    /// On a dedicated coordinator server reached by RPC.
    DedicatedServer,
    /// On each directory's owner server.
    OwnerServer,
}

/// Configuration of one simulated deployment.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Which system to deploy.
    pub system: SystemKind,
    /// Number of metadata servers (the paper sweeps 4–16).
    pub servers: usize,
    /// Cores per metadata server (the paper sweeps 2–12; default 4).
    pub cores_per_server: usize,
    /// Number of client (LibFS) instances.
    pub clients: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Dirty-state tracking mode (only meaningful for SwitchFS).
    pub tracking: TrackingChoice,
    /// Overrides the system's update mode (used by the Fig. 14 breakdown to
    /// run "+Async" without compaction).
    pub update_mode_override: Option<UpdateMode>,
    /// Overrides the system's cost model.
    pub cost_override: Option<CostModel>,
    /// Force every dirty-set insert to overflow (§7.3.2).
    pub force_dirty_overflow: bool,
    /// Proactive push / aggregation parameters.
    pub proactive: ProactiveConfig,
    /// Network fault injection.
    pub net_faults: NetFaults,
    /// Link and switch latency parameters.
    pub link_params: LinkParams,
    /// Per-client retransmission timeout (raised for the heavyweight
    /// baselines automatically).
    pub client_timeout: Option<SimDuration>,
    /// Deploy a leaf–spine fabric with this many racks and spine switches
    /// instead of a single rack (§6.4).
    pub leaf_spine: Option<(u32, u32)>,
    /// Enable causal op tracing into the shared flight recorder with this
    /// many events of per-node ring capacity. `None` (the default) deploys a
    /// disabled recorder: every instrumentation site is a single branch and
    /// the protocol schedule is bit-identical either way.
    pub trace_capacity: Option<usize>,
}

impl ClusterConfig {
    /// A configuration matching the paper's default testbed shape: the given
    /// system, 8 servers × 4 cores, 4 clients, single rack, reliable network.
    pub fn paper_default(system: SystemKind) -> Self {
        ClusterConfig {
            system,
            servers: 8,
            cores_per_server: 4,
            clients: 4,
            seed: 42,
            tracking: TrackingChoice::InNetwork,
            update_mode_override: None,
            cost_override: None,
            force_dirty_overflow: false,
            proactive: ProactiveConfig::default(),
            net_faults: NetFaults::reliable(),
            link_params: LinkParams::default(),
            client_timeout: None,
            leaf_spine: None,
            trace_capacity: None,
        }
    }

    /// Same as [`ClusterConfig::paper_default`] but with the given server
    /// count.
    pub fn with_servers(system: SystemKind, servers: usize) -> Self {
        ClusterConfig {
            servers,
            ..Self::paper_default(system)
        }
    }

    /// The effective update mode.
    pub fn update_mode(&self) -> UpdateMode {
        self.update_mode_override
            .unwrap_or_else(|| self.system.update_mode())
    }

    /// The effective cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost_override
            .unwrap_or_else(|| self.system.cost_model())
    }

    /// The client request timeout: explicit override, or scaled to the
    /// system's software stack so heavyweight baselines do not spuriously
    /// retransmit.
    pub fn effective_client_timeout(&self) -> SimDuration {
        self.client_timeout.unwrap_or_else(|| {
            let base = SimDuration::micros(400);
            base + self.cost_model().extra_software * 4
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_testbed_shape() {
        let c = ClusterConfig::paper_default(SystemKind::SwitchFs);
        assert_eq!(c.servers, 8);
        assert_eq!(c.cores_per_server, 4);
        assert_eq!(c.tracking, TrackingChoice::InNetwork);
        assert_eq!(c.update_mode(), UpdateMode::AsyncCompacted);
    }

    #[test]
    fn overrides_take_effect() {
        let mut c = ClusterConfig::paper_default(SystemKind::SwitchFs);
        c.update_mode_override = Some(UpdateMode::AsyncNoCompaction);
        assert_eq!(c.update_mode(), UpdateMode::AsyncNoCompaction);
        assert_eq!(
            ClusterConfig::with_servers(SystemKind::EmulatedCfs, 16).servers,
            16
        );
    }

    #[test]
    fn heavy_baselines_get_longer_timeouts() {
        let fast = ClusterConfig::paper_default(SystemKind::SwitchFs).effective_client_timeout();
        let slow = ClusterConfig::paper_default(SystemKind::CephFsLike).effective_client_timeout();
        assert!(slow > fast);
    }
}
