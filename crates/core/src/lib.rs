//! Cluster orchestration: building, driving and faulting a full SwitchFS (or
//! baseline) deployment inside the simulation.
//!
//! This crate glues everything together:
//!
//! * [`config::ClusterConfig`] — how many servers/cores/clients, which
//!   system ([`switchfs_baselines::SystemKind`]), which dirty-state tracking
//!   mode, fault injection, topology;
//! * [`switch_adapter`] — plugs the `switchfs-switch` data plane into the
//!   simulated network fabric;
//! * [`coordinator`] — the dedicated dirty-set coordinator server used by the
//!   §7.3.3 comparison;
//! * [`cluster::Cluster`] — builds the nodes, pre-populates namespaces,
//!   exposes crash / recovery / switch-reboot orchestration (§5.4, §7.7);
//! * [`driver`] — closed-loop workload execution with per-operation latency
//!   histograms and throughput reports, the measurement engine behind every
//!   figure of §7.

pub mod cluster;
pub mod config;
pub mod coordinator;
pub mod driver;
pub mod switch_adapter;

pub use cluster::{run_decommission, run_rebalance, Cluster, DecommissionReport};
pub use config::{ClusterConfig, TrackingChoice};
pub use driver::{OpReport, WorkloadReport};
pub use switchfs_baselines::SystemKind;
