//! Adapter plugging the SwitchFS data-plane program into the simulated
//! network fabric.

use std::cell::RefCell;
use std::rc::Rc;

use switchfs_proto::message::NetMsg;
use switchfs_simnet::{NodeId, Packet, SimTime, SwitchAction, SwitchLogic};
use switchfs_switch::SwitchFsProgram;

/// Wraps a shared [`SwitchFsProgram`] as the logic of a simulated switch.
///
/// The program itself is kept behind `Rc<RefCell<…>>` so that the cluster
/// harness can inspect its counters, force overflow (§7.3.2) or reboot it
/// (§5.4.2) while the network keeps forwarding through it.
pub struct SwitchAdapter {
    program: Rc<RefCell<SwitchFsProgram>>,
}

impl SwitchAdapter {
    /// Creates an adapter around a shared program instance.
    pub fn new(program: Rc<RefCell<SwitchFsProgram>>) -> Self {
        SwitchAdapter { program }
    }
}

impl SwitchLogic<NetMsg> for SwitchAdapter {
    fn process(&mut self, _now: SimTime, pkt: Packet<NetMsg>) -> Vec<SwitchAction<NetMsg>> {
        self.program
            .borrow_mut()
            .process(pkt.src.0, pkt.dst.0, pkt.payload)
            .into_iter()
            .map(|(dst, payload)| SwitchAction::Forward {
                dst: NodeId(dst),
                payload,
            })
            .collect()
    }

    fn name(&self) -> &str {
        "switchfs-data-plane"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchfs_proto::message::{Body, PacketSeq};
    use switchfs_proto::{DirId, DirtySetHeader, Fingerprint};
    use switchfs_switch::{DirtySetConfig, SwitchConfig};

    #[test]
    fn adapter_translates_multicast_to_forward_actions() {
        let program = Rc::new(RefCell::new(SwitchFsProgram::new(SwitchConfig {
            server_nodes: vec![10, 11],
            dirty_set: DirtySetConfig::tiny(4, 8),
            pipes: 2,
            force_insert_overflow: false,
        })));
        let mut adapter = SwitchAdapter::new(program.clone());
        let fp = Fingerprint::of_dir(&DirId::ROOT, "d");
        let pkt = Packet {
            src: NodeId(10),
            dst: NodeId(1000),
            payload: NetMsg::with_dirty(
                PacketSeq { sender: 10, seq: 1 },
                DirtySetHeader::insert(fp, 11),
                Body::Empty,
            ),
        };
        let actions = adapter.process(SimTime::ZERO, pkt);
        // Successful insert multicasts to the client (original dst) and back
        // to the origin server.
        assert_eq!(actions.len(), 2);
        assert!(program.borrow().contains(fp));
        assert_eq!(adapter.name(), "switchfs-data-plane");
    }
}
