//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the little-endian [`Buf`]/[`BufMut`]
//! accessors the SwitchFS wire codec uses. Unlike the real crate there is no
//! zero-copy reference counting — `Bytes` owns a `Vec<u8>` — which is fine
//! here because the codec only pins down the on-the-wire layout; the
//! simulated network carries typed values.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.data
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side accessors (little-endian where applicable).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side accessors that advance the cursor. Implemented for `&[u8]`,
/// which shrinks from the front as values are read.
///
/// Panics when the buffer is too short, matching the real crate; callers
/// bounds-check up front.
pub trait Buf {
    /// Number of bytes remaining.
    fn remaining(&self) -> usize;

    /// Reads raw bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 13);
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.get_u32_le(), 0xdead_beef);
        assert_eq!(rd.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut rd: &[u8] = &[1, 2];
        rd.get_u32_le();
    }
}
