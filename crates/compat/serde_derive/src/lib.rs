//! Offline stand-in for `serde_derive`.
//!
//! Generates `impl serde::Serialize` / `impl serde::Deserialize` for plain
//! (non-generic, attribute-free) structs and enums by hand-parsing the item's
//! token stream — no `syn`/`quote`, since the build environment has no
//! registry access. The generated impls convert through the stub serde's
//! [`Value`] tree using the externally-tagged enum representation, matching
//! upstream serde's default JSON shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S(T, ...);` with the field count.
    TupleStruct(usize),
    /// `struct S { a: T, ... }` with field names.
    NamedStruct(Vec<String>),
    /// `enum E { ... }`.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    // Skip outer attributes and visibility until `struct` / `enum`.
    let mut is_enum = false;
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                it.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" {
                    break;
                }
                if s == "enum" {
                    is_enum = true;
                    break;
                }
                // `pub`, `crate`, ... — keep scanning.
            }
            // `pub(crate)`'s parenthesized group.
            Some(TokenTree::Group(_)) => {}
            Some(_) => {}
            None => panic!("serde_derive: no struct or enum in derive input"),
        }
    }
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in does not support generic types ({name})");
        }
    }
    let shape = if is_enum {
        let body = match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        };
        let variants = split_top_commas(body.stream())
            .into_iter()
            .map(|toks| parse_variant(&toks))
            .collect();
        Shape::Enum(variants)
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(split_top_commas(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: expected struct body, got {other:?}"),
        }
    };
    Item { name, shape }
}

/// Splits a token stream on commas that sit outside `<...>` generic
/// arguments. Bracketed/parenthesized/braced content arrives as atomic
/// `Group` tokens, so only angle brackets need manual depth tracking.
fn split_top_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    let mut prev_dash = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            let c = p.as_char();
            if c == '<' {
                angle += 1;
            } else if c == '>' && !prev_dash {
                // `->` return arrows would misbalance; `- >` tracked above.
                angle -= 1;
            } else if c == ',' && angle == 0 {
                out.push(std::mem::take(&mut cur));
                prev_dash = false;
                continue;
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts field names from the body of a braced struct/variant: for each
/// comma-separated field, the identifier immediately before the first `:`.
fn named_field_names(stream: TokenStream) -> Vec<String> {
    split_top_commas(stream)
        .into_iter()
        .map(|toks| {
            let mut last_ident: Option<String> = None;
            let mut i = 0;
            while i < toks.len() {
                match &toks[i] {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        // Skip the attribute group that follows.
                        i += 2;
                        continue;
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' => {
                        return last_ident.expect("serde_derive: field with no name before ':'");
                    }
                    TokenTree::Ident(id) => last_ident = Some(id.to_string()),
                    _ => {}
                }
                i += 1;
            }
            panic!("serde_derive: malformed named field: {toks:?}")
        })
        .collect()
}

fn parse_variant(toks: &[TokenTree]) -> Variant {
    let mut i = 0;
    // Skip attributes.
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            if p.as_char() == '#' {
                i += 2;
                continue;
            }
        }
        break;
    }
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected variant name, got {other:?}"),
    };
    let kind = match toks.get(i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantKind::Tuple(split_top_commas(g.stream()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            VariantKind::Named(named_field_names(g.stream()))
        }
        _ => VariantKind::Unit,
    };
    Variant { name, kind }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::String(String::from(\"{vname}\")),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(String::from(\"{vname}\"), {inner});\n\
                             ::serde::Value::Object(__m)\n\
                             }}\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = String::from("let mut __fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__fm.insert(String::from(\"{f}\"), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             {inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(String::from(\"{vname}\"), ::serde::Value::Object(__fm));\n\
                             ::serde::Value::Object(__m)\n\
                             }}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!("{{ let _ = __v; Ok({name}) }}"),
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Array(__items) if __items.len() == {n} => \
                 Ok({name}({})),\n\
                 _ => Err(::serde::DeError::expected(\"array of length {n} for {name}\")),\n\
                 }}",
                elems.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         __m.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| e.in_field(\"{name}.{f}\"))?"
                    )
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Object(__m) => Ok({name} {{ {} }}),\n\
                 _ => Err(::serde::DeError::expected(\"object for {name}\")),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                        // Also accept the tagged-null form for robustness.
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ let _ = __inner; Ok({name}::{vname}) }}\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)\
                             .map_err(|e| e.in_field(\"{name}::{vname}\"))?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                             ::serde::Value::Array(__items) if __items.len() == {n} => \
                             Ok({name}::{vname}({})),\n\
                             _ => Err(::serde::DeError::expected(\"array for {name}::{vname}\")),\n\
                             }},\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     __fm.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                                     .map_err(|e| e.in_field(\"{name}::{vname}.{f}\"))?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                             ::serde::Value::Object(__fm) => Ok({name}::{vname} {{ {} }}),\n\
                             _ => Err(::serde::DeError::expected(\"object for {name}::{vname}\")),\n\
                             }},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 _ => Err(::serde::DeError::expected(\"variant of {name}\")),\n\
                 }},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = __m.iter().next().unwrap();\n\
                 match __k.as_str() {{\n\
                 {tagged_arms}\
                 _ => Err(::serde::DeError::expected(\"variant of {name}\")),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::DeError::expected(\"variant of {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}
