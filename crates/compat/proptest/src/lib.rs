//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! [`Strategy`], [`any`], [`collection::vec`], `prop_oneof!`, `proptest!`
//! and the `prop_assert*` macros — on top of the workspace's deterministic
//! `rand` stub.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs via the normal assertion message), and the per-test RNG
//! seed is derived from the test's name, so failures reproduce exactly on
//! every run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 256;

/// Builds the deterministic RNG for a named test.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of an output type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-typed strategies; backs `prop_oneof!`.
pub struct UnionStrategy<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> UnionStrategy<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> UnionStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        UnionStrategy { arms }
    }
}

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                // Weight edge values so boundaries are exercised.
                match rng.gen_range(0..16u32) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.gen::<$t>(),
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        match rng.gen_range(0..8u32) {
            0 => 0.0,
            1 => -1.5,
            2 => 1e300,
            _ => rng.gen::<f64>() * 1e6 - 5e5,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        match rng.gen_range(0..4u32) {
            0 => char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap(),
            1 => 'é',
            2 => '\u{1F600}',
            _ => char::from_u32(rng.gen_range(1u32..0xd800)).unwrap(),
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let len = rng.gen_range(0..12usize);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// `Just(v)`: the strategy that always yields clones of `v`.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The strategy namespace alias used as `prop::collection::...`.
pub mod prop {
    pub use crate::collection;
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniformly chooses between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::UnionStrategy::new(vec![
            $($crate::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property-based tests. Each `arg in strategy` binding is drawn
/// fresh for every case; the test body runs [`CASES`] times with a
/// deterministic, name-derived seed.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::rng_for(stringify!($name));
            for _ in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_calls() {
        let s = crate::collection::vec(0u64..100, 1..10);
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_in_range(x in 5u64..10, v in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn oneof_and_map_work(k in prop_oneof![
            (0u8..10).prop_map(|v| v as u64),
            100u64..110,
        ]) {
            prop_assert!(k < 10 || (100..110).contains(&k));
        }
    }
}
