//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace-local crate provides the (small) subset of the `rand 0.8` API
//! the simulator and workload generators rely on:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator;
//! * [`SeedableRng::seed_from_u64`] — splitmix64 seed expansion;
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`].
//!
//! Determinism is the only property SwitchFS actually needs from its RNG
//! (the whole evaluation substrate replays bit-identically from a seed), and
//! xoshiro256++ with splitmix64 seeding provides exactly the same guarantee
//! as upstream `StdRng`: same seed, same stream, on every platform.

/// Core trait: a source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges,
    /// matching upstream `rand`.
    fn sample_range(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range(self, rng: &mut dyn RngCore) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range(self, rng: &mut dyn RngCore) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_range(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing convenience trait, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One step of the splitmix64 sequence, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the workspace's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            StdRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&x));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
