//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` harness entry points
//! and the [`Criterion`] / [`BenchmarkGroup`] / [`Bencher`] API used by the
//! workspace's bench targets. Measurement is simple wall-clock timing with a
//! short warm-up and a median-of-samples report — enough for the relative
//! comparisons the SwitchFS evaluation needs, with zero dependencies.

use std::time::Instant;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id from a function name + parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes a
        // measurable amount of time, without running long benches forever.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1);
        let per_sample_iters = (1_000_000 / once).clamp(1, 1000) as usize;

        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample_iters {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / per_sample_iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.nanos_per_iter = samples[samples.len() / 2];
    }
}

fn report(name: &str, nanos: f64) {
    let (scaled, unit) = if nanos >= 1e9 {
        (nanos / 1e9, "s")
    } else if nanos >= 1e6 {
        (nanos / 1e6, "ms")
    } else if nanos >= 1e3 {
        (nanos / 1e3, "µs")
    } else {
        (nanos, "ns")
    };
    println!("{name:<50} time: {scaled:>10.3} {unit}/iter");
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        nanos_per_iter: 0.0,
    };
    f(&mut b);
    report(name, b.nanos_per_iter);
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut BenchmarkGroup {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut BenchmarkGroup {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
