//! The JSON-like value tree shared by the `serde` and `serde_json` stand-ins.

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key/value map preserving insertion order.
    Object(Map),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A JSON number: a non-negative integer, a negative integer, or a finite
/// float — the same three-way split the real `serde_json` uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An integer representable as `u64`.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float.
    Float(f64),
}

impl Number {
    /// Builds a number from a `u64`.
    pub fn from_u64(v: u64) -> Number {
        Number::PosInt(v)
    }

    /// Builds a number from an `i64`, normalizing non-negative values.
    pub fn from_i64(v: i64) -> Number {
        if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }
    }

    /// Builds a number from a finite `f64`; `None` for NaN / infinities,
    /// matching `serde_json::Number::from_f64`.
    pub fn from_f64(v: f64) -> Option<Number> {
        if v.is_finite() {
            Some(Number::Float(v))
        } else {
            None
        }
    }

    /// The number as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(*v).ok(),
            Number::NegInt(v) => Some(*v),
            Number::Float(_) => None,
        }
    }

    /// The number as `f64` (lossy for large integers).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(v) => *v as f64,
            Number::NegInt(v) => *v as f64,
            Number::Float(v) => *v,
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map` with
/// `preserve_order` semantics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts a key, replacing (in place) any existing entry for it.
    /// Returns the previous value if the key was present.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// Writes `v` as JSON. `indent = None` is compact; `Some(width)` pretty.
#[doc(hidden)]
pub fn write_json(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            // `{}` on f64 is the shortest representation that round-trips,
            // but prints integral floats without a fraction ("1"); add ".0"
            // so the value re-parses as a float, like serde_json does.
            let mut s = format!("{v}");
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                s.push_str(".0");
            }
            out.push_str(&s);
        }
    }
}

/// Writes a JSON string literal with escaping.
#[doc(hidden)]
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact JSON, matching `serde_json::Value`'s `Display`.
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_json(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        assert_eq!(m.insert("a".into(), Value::Bool(true)), None);
        assert_eq!(m.insert("b".into(), Value::Null), None);
        assert_eq!(
            m.insert("a".into(), Value::Bool(false)),
            Some(Value::Bool(true))
        );
        assert_eq!(m.len(), 2);
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
    }

    #[test]
    fn number_normalization() {
        assert_eq!(Number::from_i64(5), Number::PosInt(5));
        assert_eq!(Number::from_i64(-5), Number::NegInt(-5));
        assert_eq!(Number::from_f64(f64::NAN), None);
        assert_eq!(Number::from_i64(-5).as_i64(), Some(-5));
        assert_eq!(Number::from_u64(u64::MAX).as_i64(), None);
    }
}
