//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate supplies working (if simplified) serialization machinery:
//!
//! * [`Serialize`] / [`Deserialize`] traits that convert through a JSON-like
//!   [`Value`] tree rather than serde's streaming data model;
//! * derive macros (from the sibling `serde_derive` crate) that generate
//!   those impls for plain structs and enums;
//! * the [`Value`] / [`Number`] / [`Map`] types that `serde_json` re-exports.
//!
//! The enum representation is externally tagged, like upstream serde's
//! default, so JSON produced here looks like what real serde_json would
//! emit. Only the shapes this workspace actually derives are supported:
//! non-generic structs and enums without `#[serde(...)]` attributes.

pub use serde_derive::{Deserialize, Serialize};

#[doc(hidden)]
pub mod value;

pub use value::{Map, Number, Value};

/// Error produced when a [`Value`] cannot be decoded into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A "expected X" decode error.
    pub fn expected(what: &str) -> DeError {
        DeError {
            msg: format!("expected {what}"),
        }
    }

    /// A decode error with a custom message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// Wraps the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> DeError {
        DeError {
            msg: format!("{}: {}", field, self.msg),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Attempts to reconstruct `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        match Number::from_f64(*self) {
            Some(n) => Value::Number(n),
            None => Value::Null,
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        match self {
            Ok(v) => m.insert(String::from("Ok"), v.to_value()),
            Err(e) => m.insert(String::from("Err"), e.to_value()),
        };
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::expected(concat!(stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::expected(concat!(stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("f64"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string"))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string")),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::rc::Rc::new)
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array")),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        items
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected("tuple array")),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (1; A.0)
    (2; A.0, B.1)
    (3; A.0, B.1, C.2)
    (4; A.0, B.1, C.2, D.3)
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = match v {
            Value::Object(m) if m.len() == 1 => m,
            _ => return Err(DeError::expected("Ok/Err object")),
        };
        let (k, inner) = m.iter().next().unwrap();
        match k.as_str() {
            "Ok" => T::from_value(inner).map(Ok),
            "Err" => E::from_value(inner).map(Err),
            _ => Err(DeError::expected("Ok/Err object")),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object")),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object")),
        }
    }
}
