//! Offline stand-in for `serde_json`.
//!
//! Serializes the stub serde's [`Value`] tree to JSON text and parses JSON
//! text back, covering [`to_string`], [`to_string_pretty`], [`from_str`],
//! the [`json!`] macro and the [`Value`]/[`Number`]/[`Map`] types.
//!
//! Floats are printed with Rust's shortest round-trippable formatting, so
//! encode/decode of any finite `f64` is loss-free.

pub use serde::{Map, Number, Value};

#[doc(hidden)]
pub mod __private {
    pub use serde::Serialize;
}

/// Error produced by [`to_string`] / [`from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::value::write_json(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::value::write_json(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path over unescaped runs (valid UTF-8 by construction).
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| Error::new("short \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("bad hex digit"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let n = if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number '{text}'")))?;
            Number::from_f64(f).ok_or_else(|| Error::new("non-finite number"))?
        } else if text.starts_with('-') {
            let v: i64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number '{text}'")))?;
            Number::from_i64(v)
        } else {
            let v: u64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number '{text}'")))?;
            Number::from_u64(v)
        };
        Ok(Value::Number(n))
    }
}

/// Builds a [`Value`] from a JSON-ish literal. Supports `null`, object and
/// array literals whose values are Rust expressions, and bare expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert(($key).to_string(), $crate::__private::Serialize::to_value(&$val)); )*
        $crate::Value::Object(__m)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::__private::Serialize::to_value(&$val)),* ])
    };
    ($e:expr) => { $crate::__private::Serialize::to_value(&$e) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = json!({
            "a": 1u64,
            "b": [1u64, 2u64, 3u64],
            "c": "hi\n\"quoted\"",
            "d": -5i64,
            "e": 1.5f64,
            "f": json!(null),
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v: Value = from_str(" { \"x\" : [ 1 , { \"y\" : null } , true ] } ").unwrap();
        let m = v.as_object().unwrap();
        let arr = m.get("x").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2], Value::Bool(true));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1, 1e300, -2.5e-10, 3.0, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f, back, "{text}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
