#!/usr/bin/env python3
"""CI perf guard for the Quick figures sweep.

Checks the sweep JSON written by `figures all --json PATH` against the
checked-in baseline:

1. total wall clock must stay within 3x the baseline (catches an accidental
   O(n^2) reintroduction, not CI-runner noise);
2. the elastic-membership experiments (`rebalance`, `decommission`) must be
   present and every row that reports an `errors` column must report 0 —
   live shard migration and graceful shrink are required to be invisible to
   clients (freeze-window drops are absorbed by retransmission, stale maps
   refresh via WrongOwner).

Usage: check_perf.py [SWEEP_JSON] [BASELINE_JSON]
"""

import json
import sys

ELASTIC_EXPERIMENTS = ("rebalance", "decommission")
WALL_CLOCK_FACTOR = 3.0


def main() -> int:
    sweep_path = sys.argv[1] if len(sys.argv) > 1 else "bench-smoke.json"
    base_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_PR2.json"
    with open(sweep_path) as f:
        sweep = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    failures = []

    measured = sweep["total_wall_clock_secs"]
    reference = base["quick_sweep"]["post_change"]["reference_total_wall_clock_secs"]
    budget = WALL_CLOCK_FACTOR * reference
    print(f"sweep took {measured:.1f}s, budget {budget:.1f}s")
    if measured > budget:
        failures.append(f"wall clock {measured:.1f}s exceeds budget {budget:.1f}s")

    experiments = {e.get("name"): e for e in sweep.get("experiments", [])}
    for name in ELASTIC_EXPERIMENTS:
        exp = experiments.get(name)
        if exp is None:
            failures.append(f"experiment '{name}' missing from the sweep")
            continue
        for row in exp.get("rows", []):
            errors = row.get("errors")
            if errors is None:
                continue
            label = row.get("label", "?")
            print(f"{name} / {label}: errors={errors:g}")
            if errors != 0:
                failures.append(f"{name} / {label}: {errors:g} errors (must be 0)")

    if failures:
        for f_ in failures:
            print(f"perf smoke FAILED: {f_}", file=sys.stderr)
        return 1
    print("perf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
