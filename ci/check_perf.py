#!/usr/bin/env python3
"""CI perf guard for the Quick figures sweep.

Checks the sweep JSON written by `figures all --json PATH` against the
checked-in baseline:

1. total wall clock must stay within 3x the baseline (catches an accidental
   O(n^2) reintroduction, not CI-runner noise);
2. the elastic-membership experiments (`rebalance`, `decommission`) must be
   present and every row that reports an `errors` column must report 0 —
   live shard migration and graceful shrink are required to be invisible to
   clients (freeze-window drops are absorbed by retransmission, stale maps
   refresh via WrongOwner);
3. the `metrics` experiment (the one run with the flight recorder ON) must
   be present with the core unified-registry rows, prove that the
   tracing-enabled run completed (`client.ops_issued` > 0 and
   `obs.events_recorded` > 0), and satisfy the WAL watermark invariant
   (`wal.bytes_flushed` <= `wal.bytes_appended`).

Usage: check_perf.py [SWEEP_JSON] [BASELINE_JSON]
"""

import json
import sys

ELASTIC_EXPERIMENTS = ("rebalance", "decommission")
WALL_CLOCK_FACTOR = 3.0
# Named rows the unified metrics registry must always expose.
REQUIRED_METRICS = (
    "client.ops_issued",
    "client.ops_ok",
    "kv.gets",
    "kv.puts",
    "net.delivered",
    "net.sent",
    "obs.events_evicted",
    "obs.events_recorded",
    "server.ops_completed",
    "switch.packets",
    "wal.appends",
    "wal.bytes_appended",
    "wal.bytes_flushed",
)


def main() -> int:
    sweep_path = sys.argv[1] if len(sys.argv) > 1 else "bench-smoke.json"
    base_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_PR2.json"
    with open(sweep_path) as f:
        sweep = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    failures = []

    measured = sweep["total_wall_clock_secs"]
    reference = base["quick_sweep"]["post_change"]["reference_total_wall_clock_secs"]
    budget = WALL_CLOCK_FACTOR * reference
    print(f"sweep took {measured:.1f}s, budget {budget:.1f}s")
    if measured > budget:
        failures.append(f"wall clock {measured:.1f}s exceeds budget {budget:.1f}s")

    experiments = {e.get("name"): e for e in sweep.get("experiments", [])}
    for name in ELASTIC_EXPERIMENTS:
        exp = experiments.get(name)
        if exp is None:
            failures.append(f"experiment '{name}' missing from the sweep")
            continue
        for row in exp.get("rows", []):
            errors = row.get("errors")
            if errors is None:
                continue
            label = row.get("label", "?")
            print(f"{name} / {label}: errors={errors:g}")
            if errors != 0:
                failures.append(f"{name} / {label}: {errors:g} errors (must be 0)")

    metrics_exp = experiments.get("metrics")
    if metrics_exp is None:
        failures.append("experiment 'metrics' missing from the sweep")
    else:
        values = {
            row.get("label"): row.get("value") for row in metrics_exp.get("rows", [])
        }
        missing = [name for name in REQUIRED_METRICS if name not in values]
        if missing:
            failures.append(f"metrics registry rows missing: {', '.join(missing)}")
        else:
            issued = values["client.ops_issued"]
            recorded = values["obs.events_recorded"]
            print(
                f"metrics: {len(values)} rows, ops_issued={issued:g}, "
                f"trace events recorded={recorded:g}"
            )
            if issued <= 0:
                failures.append("metrics: tracing-enabled run issued no ops")
            if recorded <= 0:
                failures.append(
                    "metrics: flight recorder was enabled but recorded nothing"
                )
            if values["wal.bytes_flushed"] > values["wal.bytes_appended"]:
                failures.append(
                    "metrics: wal.bytes_flushed exceeds wal.bytes_appended "
                    "(flush watermark overran the append counter)"
                )

    if failures:
        for f_ in failures:
            print(f"perf smoke FAILED: {f_}", file=sys.stderr)
        return 1
    print("perf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
